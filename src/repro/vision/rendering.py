"""Vectorized ray-primitive intersections for the depth renderer.

All functions take ray origins/directions broadcast over a pixel grid and
return the hit distance ``t`` (``inf`` where a ray misses).  Distances are
Euclidean (depth cameras report range along the ray).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

_EPS = 1e-9


def _check_dirs(directions: np.ndarray) -> np.ndarray:
    directions = np.asarray(directions, dtype=np.float64)
    if directions.ndim < 2 or directions.shape[-1] != 3:
        raise ShapeError(
            f"directions must have trailing dimension 3, got {directions.shape}"
        )
    return directions


def ray_plane_intersection(
    origin: np.ndarray,
    directions: np.ndarray,
    axis: int,
    value: float,
    bounds_lo: np.ndarray,
    bounds_hi: np.ndarray,
) -> np.ndarray:
    """Distance to an axis-aligned rectangle ``x[axis] = value``.

    ``bounds_lo``/``bounds_hi`` give the rectangle extents on the two
    remaining axes (3-vectors; the ``axis`` component is ignored).
    """
    directions = _check_dirs(directions)
    origin = np.asarray(origin, dtype=np.float64)
    d_axis = directions[..., axis]
    with np.errstate(divide="ignore", invalid="ignore"):
        t = (value - origin[axis]) / d_axis
    hit = np.where((t > _EPS) & np.isfinite(t), t, np.inf)
    with np.errstate(invalid="ignore"):
        point = origin + directions * hit[..., None]
    for other in range(3):
        if other == axis:
            continue
        coordinate = point[..., other]
        inside = (coordinate >= bounds_lo[other] - _EPS) & (
            coordinate <= bounds_hi[other] + _EPS
        )
        hit = np.where(inside, hit, np.inf)
    return hit


def ray_box_intersection(
    origin: np.ndarray,
    directions: np.ndarray,
    box_min: np.ndarray,
    box_max: np.ndarray,
) -> np.ndarray:
    """Slab-method distance to an axis-aligned box (entry point)."""
    directions = _check_dirs(directions)
    origin = np.asarray(origin, dtype=np.float64)
    box_min = np.asarray(box_min, dtype=np.float64)
    box_max = np.asarray(box_max, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = 1.0 / directions
    t1 = (box_min - origin) * inv
    t2 = (box_max - origin) * inv
    t_near = np.max(np.minimum(t1, t2), axis=-1)
    t_far = np.min(np.maximum(t1, t2), axis=-1)
    hits = (t_far >= t_near) & (t_far > _EPS)
    entry = np.where(t_near > _EPS, t_near, t_far)
    return np.where(hits, entry, np.inf)


def ray_cylinder_intersection(
    origin: np.ndarray,
    directions: np.ndarray,
    centre_xy: np.ndarray,
    radius: float,
    height: float,
) -> np.ndarray:
    """Distance to a vertical capped cylinder (the human body model)."""
    directions = _check_dirs(directions)
    origin = np.asarray(origin, dtype=np.float64)
    centre_xy = np.asarray(centre_xy, dtype=np.float64)
    if centre_xy.shape != (2,):
        raise ShapeError(f"centre_xy must be a 2-vector, got {centre_xy.shape}")
    if radius <= 0 or height <= 0:
        raise ShapeError("cylinder radius and height must be positive")

    dx = directions[..., 0]
    dy = directions[..., 1]
    ox = origin[0] - centre_xy[0]
    oy = origin[1] - centre_xy[1]

    a = dx * dx + dy * dy
    b = 2.0 * (ox * dx + oy * dy)
    c = ox * ox + oy * oy - radius * radius
    disc = b * b - 4.0 * a * c
    sqrt_disc = np.sqrt(np.maximum(disc, 0.0))
    with np.errstate(divide="ignore", invalid="ignore"):
        t_lo = (-b - sqrt_disc) / (2.0 * a)
        t_hi = (-b + sqrt_disc) / (2.0 * a)
    valid = disc >= 0.0

    def _side_hit(t: np.ndarray) -> np.ndarray:
        z = origin[2] + directions[..., 2] * t
        ok = valid & (t > _EPS) & (z >= 0.0) & (z <= height)
        return np.where(ok, t, np.inf)

    side = np.minimum(_side_hit(t_lo), _side_hit(t_hi))

    # Top cap disc at z = height.
    dz = directions[..., 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        t_cap = (height - origin[2]) / dz
        px = origin[0] + dx * t_cap - centre_xy[0]
        py = origin[1] + dy * t_cap - centre_xy[1]
        cap_ok = (t_cap > _EPS) & (px * px + py * py <= radius * radius)
    cap = np.where(cap_ok, t_cap, np.inf)
    return np.minimum(side, cap)


def ray_cylinder_intersection_batch(
    origin: np.ndarray,
    directions: np.ndarray,
    centres_xy: np.ndarray,
    radius: float,
    height: float,
) -> np.ndarray:
    """Vectorized :func:`ray_cylinder_intersection` over cylinder centres.

    ``centres_xy`` has shape ``(F, 2)``; returns ``(F, *grid)`` hit
    distances matching the scalar function per centre.
    """
    directions = _check_dirs(directions)
    origin = np.asarray(origin, dtype=np.float64)
    centres = np.asarray(centres_xy, dtype=np.float64)
    if centres.ndim != 2 or centres.shape[1] != 2:
        raise ShapeError(
            f"centres_xy must be (F, 2), got {centres.shape}"
        )
    if radius <= 0 or height <= 0:
        raise ShapeError("cylinder radius and height must be positive")

    grid_axes = (1,) * (directions.ndim - 1)
    dx = directions[..., 0][None]
    dy = directions[..., 1][None]
    dz = directions[..., 2][None]
    ox = (origin[0] - centres[:, 0]).reshape(-1, *grid_axes)
    oy = (origin[1] - centres[:, 1]).reshape(-1, *grid_axes)

    a = dx * dx + dy * dy
    b = 2.0 * (ox * dx + oy * dy)
    c = ox * ox + oy * oy - radius * radius
    disc = b * b - 4.0 * a * c
    sqrt_disc = np.sqrt(np.maximum(disc, 0.0))
    with np.errstate(divide="ignore", invalid="ignore"):
        t_lo = (-b - sqrt_disc) / (2.0 * a)
        t_hi = (-b + sqrt_disc) / (2.0 * a)
    valid = disc >= 0.0

    def _side_hit(t: np.ndarray) -> np.ndarray:
        z = origin[2] + dz * t
        ok = valid & (t > _EPS) & (z >= 0.0) & (z <= height)
        return np.where(ok, t, np.inf)

    side = np.minimum(_side_hit(t_lo), _side_hit(t_hi))

    # Top cap disc at z = height.
    with np.errstate(divide="ignore", invalid="ignore"):
        t_cap = (height - origin[2]) / dz
        px = origin[0] + dx * t_cap - centres[:, 0].reshape(-1, *grid_axes)
        py = origin[1] + dy * t_cap - centres[:, 1].reshape(-1, *grid_axes)
        cap_ok = (t_cap > _EPS) & (px * px + py * py <= radius * radius)
    cap = np.where(cap_ok, np.broadcast_to(t_cap, cap_ok.shape), np.inf)
    return np.minimum(side, cap)


def ray_room_intersection(
    origin: np.ndarray,
    directions: np.ndarray,
    width: float,
    depth: float,
    height: float,
) -> np.ndarray:
    """Distance to the inside of the room box (floor, walls, ceiling)."""
    directions = _check_dirs(directions)
    lo = np.array([0.0, 0.0, 0.0])
    hi = np.array([width, depth, height])
    best = np.full(directions.shape[:-1], np.inf)
    faces = [
        (0, 0.0),
        (0, width),
        (1, 0.0),
        (1, depth),
        (2, 0.0),
        (2, height),
    ]
    for axis, value in faces:
        t = ray_plane_intersection(origin, directions, axis, value, lo, hi)
        best = np.minimum(best, t)
    return best
