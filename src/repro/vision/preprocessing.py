"""Depth-image pre-processing (paper Fig. 7 and Sec. 4).

The measurement pipeline downsamples 720x1080 ZED frames by 10 to 72x108
and crops the static margins to a 50x90 CNN input.  The simulator renders
natively at 72x108 (see DESIGN.md), but the 720p path is implemented and
tested so real footage could be substituted.
"""

from __future__ import annotations

import numpy as np

from ..config import CameraConfig
from ..errors import ShapeError


def block_downsample(image: np.ndarray, factor: int) -> np.ndarray:
    """Downsample by block-averaging ``factor x factor`` tiles.

    Trailing rows/columns that do not fill a whole tile are dropped,
    mirroring the integer decimation of the measurement pipeline.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ShapeError(f"image must be 2-D, got shape {image.shape}")
    if factor < 1:
        raise ShapeError(f"factor must be >= 1, got {factor}")
    rows = (image.shape[0] // factor) * factor
    cols = (image.shape[1] // factor) * factor
    if rows == 0 or cols == 0:
        raise ShapeError(
            f"image {image.shape} smaller than one {factor}x{factor} block"
        )
    trimmed = image[:rows, :cols]
    blocks = trimmed.reshape(
        rows // factor, factor, cols // factor, factor
    )
    return blocks.mean(axis=(1, 3))


def crop_depth(image: np.ndarray, config: CameraConfig) -> np.ndarray:
    """Crop the static margins, keeping the configured output window."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ShapeError(f"image must be 2-D, got shape {image.shape}")
    rows, cols = config.output_shape
    top, left = config.crop_top, config.crop_left
    if top + rows > image.shape[0] or left + cols > image.shape[1]:
        raise ShapeError(
            f"crop window {config.output_shape}@({top},{left}) exceeds "
            f"image {image.shape}"
        )
    return image[top : top + rows, left : left + cols]


def preprocess_depth(image: np.ndarray, config: CameraConfig) -> np.ndarray:
    """Crop a natively-rendered 72x108 depth image to the CNN input."""
    return crop_depth(image, config)


def preprocess_720p(
    image: np.ndarray, config: CameraConfig, factor: int = 10
) -> np.ndarray:
    """Full measurement pipeline: 720x1080 -> downsample by 10 -> crop."""
    downsampled = block_downsample(image, factor)
    if downsampled.shape != config.render_shape:
        raise ShapeError(
            f"downsampled shape {downsampled.shape} does not match the "
            f"configured render shape {config.render_shape}"
        )
    return crop_depth(downsampled, config)


def normalize_depth(image: np.ndarray, max_depth_m: float) -> np.ndarray:
    """Scale depth to [0, 1] for CNN input."""
    if max_depth_m <= 0:
        raise ShapeError(f"max_depth_m must be positive, got {max_depth_m}")
    image = np.asarray(image, dtype=np.float64)
    return np.clip(image / max_depth_m, 0.0, 1.0)


def normalize_depth_batch(
    frames: np.ndarray, max_depth_m: float
) -> np.ndarray:
    """Batched :func:`normalize_depth` over a ``(n, rows, cols)`` stack.

    One vectorized clip instead of a per-frame Python loop — the
    :class:`~repro.stream.service.PredictionService` hot path normalizes
    every micro-batched depth frame through this function.  Delegates to
    :func:`normalize_depth` (whose arithmetic is shape-agnostic) after
    the stack-shape check, so serving-time normalization can never
    diverge from the training-time path.
    """
    frames = np.asarray(frames)
    if frames.ndim != 3:
        raise ShapeError(
            f"frames must be (n, rows, cols), got shape {frames.shape}"
        )
    return normalize_depth(frames, max_depth_m)
