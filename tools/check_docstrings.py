#!/usr/bin/env python3
"""Docstring regression gate for the public Python API.

Equivalent in spirit to ``pydocstyle`` D1xx (missing-docstring) checks,
but self-contained so it runs in the offline container and in CI
without extra dependencies.  For every module, public class and public
function/method in the given files or directories it requires a
non-trivial docstring (present, non-empty, more than one word).

Usage::

    python tools/check_docstrings.py src/repro/campaign src/repro/phy/batch.py

Exits 1 listing every violation, 0 when clean.  The CI docs job runs it
over the campaign subsystem and the batched PHY engine so their API
docs cannot silently regress.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _docstring_problem(node: ast.AST) -> str | None:
    """Why a node's docstring is inadequate, or None if fine."""
    doc = ast.get_docstring(node)
    if doc is None:
        return "missing docstring"
    if len(doc.split()) < 2:
        return "docstring is trivially short"
    return None


def _walk_definitions(tree: ast.Module):
    """Yield (node, qualified-ish name) for public defs worth checking.

    Top-level classes/functions plus methods of top-level classes;
    nested helper functions are exempt (their contracts are local).
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name):
                yield node, node.name
        elif isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            yield node, node.name
            for child in node.body:
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    if _is_public(child.name):
                        yield child, f"{node.name}.{child.name}"


def check_file(path: Path) -> list[str]:
    """All docstring violations in one file, as report lines."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    module_problem = _docstring_problem(tree)
    if module_problem is not None:
        problems.append(f"{path}:1: module: {module_problem}")
    for node, name in _walk_definitions(tree):
        problem = _docstring_problem(node)
        if problem is not None:
            problems.append(f"{path}:{node.lineno}: {name}: {problem}")
    return problems


def collect_files(targets: list[str]) -> list[Path]:
    """Expand file/directory arguments into a sorted .py file list."""
    files: list[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" and path.exists():
            files.append(path)
        else:
            raise SystemExit(f"error: no such python file or dir: {target}")
    return files


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the exit code."""
    targets = (argv if argv is not None else sys.argv[1:]) or [
        "src/repro/campaign",
        "src/repro/phy/batch.py",
    ]
    problems: list[str] = []
    files = collect_files(targets)
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print(f"{len(problems)} docstring violation(s):")
        for line in problems:
            print(f"  {line}")
        return 1
    print(f"docstrings ok across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
