"""Repo tooling package (docstring gate, benchmark trajectories).

Making ``tools`` importable lets the benchmark harness and its unit
tests share :mod:`tools.bench_trajectory` with the CI scripts that run
the modules directly.
"""
