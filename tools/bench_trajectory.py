"""Merged per-bench benchmark trajectories.

Every benchmark used to manage its own output file ad hoc (and most
simply overwrote it), so performance history was lost between runs.
This module gives all benches one append-only store:
``BENCH_trajectory.json`` maps each bench name to its list of
measurement entries, merged on every append and ordered by the entry's
``timestamp`` field — so a nightly CI run accumulates a comparable
performance trajectory instead of a single latest sample.

The store is deliberately dependency-free (stdlib only — it must run
inside CI steps that install nothing) and robust against the formats it
replaces: a legacy top-level list (the old ``BENCH_stream.json``) is
migrated under its entries' ``bench`` keys, a corrupt file is treated
as empty, and concurrent appenders serialize through an ``O_EXCL``
lock file.

Usage from a benchmark::

    from tools.bench_trajectory import append_entry
    append_entry("stream_throughput", {..., "timestamp": time.time()})

``python tools/bench_trajectory.py [path]`` prints a short summary of
the stored trajectories.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

#: Environment variable overriding the default trajectory path.
BENCH_JSON_ENV = "REPRO_BENCH_JSON"

#: Current on-disk schema version.
FORMAT_VERSION = 1

#: Seconds after which a dead appender's lock file is reclaimed.
_STALE_LOCK_SECONDS = 30.0


def default_path() -> Path:
    """Trajectory path: ``$REPRO_BENCH_JSON`` or ``BENCH_trajectory.json``."""
    return Path(os.environ.get(BENCH_JSON_ENV, "BENCH_trajectory.json"))


def _empty_history() -> dict:
    """A fresh, entry-less history document."""
    return {"version": FORMAT_VERSION, "benches": {}}


def host_metadata() -> dict:
    """Describe the machine and floor overrides behind one measurement.

    A trajectory is only comparable across entries measured under the
    same conditions; stamping the CPU count, platform and any
    ``REPRO_*`` benchmark-floor overrides lets the nightly comparison
    scripts partition the history instead of averaging a laptop into a
    CI runner.  Pure environment read — no clocks, so entries stay
    keyed by their ``timestamp`` alone.
    """
    floors = {
        name: value
        for name, value in sorted(os.environ.items())
        if name.startswith("REPRO_") and name.endswith("_FLOOR")
    }
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "floors": floors,
    }


def load_history(path: str | Path) -> dict:
    """Read a trajectory file, tolerating every format it replaces.

    Returns the current ``{"version": 1, "benches": {...}}`` document.
    A missing or corrupt file yields an empty history; a legacy
    top-level list (the pre-merge ``BENCH_stream.json`` layout) is
    migrated by filing each entry under its ``bench`` key
    (``"unknown"`` when absent).
    """
    path = Path(path)
    if not path.exists():
        return _empty_history()
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return _empty_history()
    if isinstance(data, list):
        history = _empty_history()
        for entry in data:
            if not isinstance(entry, dict):
                continue
            bench = str(entry.get("bench", "unknown"))
            history["benches"].setdefault(bench, []).append(entry)
        _sort_entries(history)
        return history
    if not isinstance(data, dict):
        return _empty_history()
    if "benches" not in data or not isinstance(data["benches"], dict):
        return _empty_history()
    history = {
        "version": FORMAT_VERSION,
        "benches": {
            str(name): [e for e in entries if isinstance(e, dict)]
            for name, entries in data["benches"].items()
            if isinstance(entries, list)
        },
    }
    _sort_entries(history)
    return history


def _sort_entries(history: dict) -> None:
    """Order every bench's entries by timestamp (stable for ties)."""
    for entries in history["benches"].values():
        entries.sort(key=lambda entry: float(entry.get("timestamp", 0.0)))


def merge_entry(history: dict, bench: str, entry: dict) -> dict:
    """Merge one measurement into a history document (pure function).

    The entry lands in ``history["benches"][bench]`` keyed by its
    ``timestamp`` (one is stamped if missing): an entry whose timestamp
    already exists for that bench *replaces* the stored one (re-running
    a bench in the same instant is a correction, not a new sample),
    anything else appends, and the bench's list comes back
    timestamp-sorted.  The input document is not mutated.

    New entries are stamped with :func:`host_metadata` under ``host``
    (unless the caller already provided one); legacy entries without
    the field load, merge and sort unchanged.
    """
    merged = {
        "version": FORMAT_VERSION,
        "benches": {
            name: list(entries)
            for name, entries in history.get("benches", {}).items()
        },
    }
    entry = dict(entry)
    entry.setdefault("timestamp", time.time())
    entry.setdefault("host", host_metadata())
    entry["bench"] = bench
    entries = merged["benches"].setdefault(bench, [])
    stamp = float(entry["timestamp"])
    for index, existing in enumerate(entries):
        if float(existing.get("timestamp", 0.0)) == stamp:
            entries[index] = entry
            break
    else:
        entries.append(entry)
    _sort_entries(merged)
    return merged


def append_entry(
    bench: str, entry: dict, path: str | Path | None = None
) -> Path:
    """Load-merge-write one measurement (locked, atomic); returns the path.

    Concurrent appenders (sharded CI jobs finishing together) serialize
    through a sidecar ``O_EXCL`` lock file; the write itself goes
    through a unique temp file + ``os.replace`` so readers never see a
    torn document.
    """
    path = Path(path) if path is not None else default_path()
    lock = path.with_name(path.name + ".lock")
    deadline = time.monotonic() + 30.0
    fd = None
    while fd is None:
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            # Reclaim an abandoned lock by atomically *renaming* it
            # first (one winner; losers retry) so a waiter can never
            # unlink a fresh lock another process just created.
            try:
                if time.time() - lock.stat().st_mtime > _STALE_LOCK_SECONDS:
                    claimed = lock.with_name(
                        f"{lock.name}.stale.{os.getpid()}"
                    )
                    os.rename(lock, claimed)
                    os.unlink(claimed)
            except OSError:
                pass
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"could not acquire bench-trajectory lock {lock}"
                )
            time.sleep(0.01)
    try:
        history = merge_entry(load_history(path), bench, entry)
        tmp = path.with_name(f".tmp_{os.getpid()}_{path.name}")
        tmp.write_text(json.dumps(history, indent=2, sort_keys=True))
        os.replace(tmp, path)
    finally:
        os.close(fd)
        lock.unlink(missing_ok=True)
    return path


def main(argv: list[str] | None = None) -> int:
    """Print a per-bench summary of a trajectory file."""
    argv = sys.argv[1:] if argv is None else argv
    path = Path(argv[0]) if argv else default_path()
    history = load_history(path)
    benches = history["benches"]
    if not benches:
        print(f"{path}: no benchmark trajectories")
        return 0
    print(f"{path}: {len(benches)} bench trajectory(ies)")
    for name in sorted(benches):
        entries = benches[name]
        latest = entries[-1]
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S",
            time.localtime(float(latest.get("timestamp", 0.0))),
        )
        print(f"  {name}: {len(entries)} entry(ies), latest {stamp}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
