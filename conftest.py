"""Repo-root pytest bootstrap.

Makes the repository root importable so every test tree (tests/,
benchmarks/) can reach the ``tools`` package (bench trajectories)
without installing anything or duplicating path surgery per conftest.
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO_ROOT = str(Path(__file__).resolve().parent)
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)
