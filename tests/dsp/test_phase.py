"""Tests for Eq. 8 phase estimation and canonicalization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import (
    canonicalize_phase,
    correct_phase,
    estimate_phase_shift,
    estimate_waveform_phase_shift,
)
from repro.errors import ShapeError


class TestEstimatePhaseShift:
    def test_recovers_known_rotation(self, rng):
        h = rng.normal(size=11) + 1j * rng.normal(size=11)
        for theta in (-2.5, -0.3, 0.0, 1.0, 3.0):
            rotated = h * np.exp(1j * theta)
            estimate = estimate_phase_shift(rotated, h)
            assert np.isclose(
                np.angle(np.exp(1j * (estimate - theta))), 0.0, atol=1e-9
            )

    def test_zero_for_identical(self, rng):
        h = rng.normal(size=5) + 1j * rng.normal(size=5)
        assert estimate_phase_shift(h, h) == pytest.approx(0.0)

    def test_zero_vector_returns_zero(self):
        assert estimate_phase_shift(np.zeros(3), np.zeros(3)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            estimate_phase_shift(np.ones(3), np.ones(4))

    def test_robust_to_noise(self, rng):
        h = rng.normal(size=11) + 1j * rng.normal(size=11)
        rotated = h * np.exp(1j * 0.8) + 0.01 * (
            rng.normal(size=11) + 1j * rng.normal(size=11)
        )
        assert abs(estimate_phase_shift(rotated, h) - 0.8) < 0.05


class TestWaveformPhaseShift:
    def test_recovers_crystal_rotation(self, rng):
        x = rng.normal(size=400) + 1j * rng.normal(size=400)
        h = np.array([1.0, 0.4 + 0.2j, 0.1])
        theta = 1.9
        y = np.convolve(x, h) * np.exp(1j * theta)
        estimate = estimate_waveform_phase_shift(y, x, h)
        assert abs(np.angle(np.exp(1j * (estimate - theta)))) < 1e-6

    def test_aligned_blind_estimate_decodes(self, rng):
        # Rotating the blind estimate by the estimated angle makes it match
        # the received block's phase (footnote 4 use-case).
        x = rng.normal(size=300) + 1j * rng.normal(size=300)
        h = np.array([1.0, 0.5j, 0.2])
        theta = -2.2
        y = np.convolve(x, h) * np.exp(1j * theta)
        aligned = correct_phase(h, estimate_waveform_phase_shift(y, x, h))
        assert np.allclose(aligned, h * np.exp(1j * theta), atol=1e-6)

    def test_empty_overlap_returns_zero(self):
        assert (
            estimate_waveform_phase_shift(
                np.empty(0, complex), np.empty(0, complex), np.ones(3)
            )
            == 0.0
        )

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            estimate_waveform_phase_shift(
                np.ones((2, 2)), np.ones(4), np.ones(2)
            )


class TestCanonicalize:
    def test_canonical_form_is_rotation_invariant(self, rng):
        reference = rng.normal(size=11) + 1j * rng.normal(size=11)
        h = rng.normal(size=11) + 1j * rng.normal(size=11)
        canon_1, _ = canonicalize_phase(h, reference)
        canon_2, _ = canonicalize_phase(h * np.exp(1j * 2.1), reference)
        assert np.allclose(canon_1, canon_2, atol=1e-9)

    def test_round_trip(self, rng):
        reference = rng.normal(size=7) + 1j * rng.normal(size=7)
        h = rng.normal(size=7) + 1j * rng.normal(size=7)
        canonical, theta = canonicalize_phase(h, reference)
        assert np.allclose(correct_phase(canonical, theta), h, atol=1e-12)

    def test_canonical_has_zero_shift_to_reference(self, rng):
        reference = rng.normal(size=9) + 1j * rng.normal(size=9)
        h = (rng.normal(size=9) + 1j * rng.normal(size=9)) * np.exp(0.7j)
        canonical, _ = canonicalize_phase(h, reference)
        assert abs(estimate_phase_shift(canonical, reference)) < 1e-9


@given(
    theta=st.floats(min_value=-3.1, max_value=3.1),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_property_eq8_recovers_rotation(theta, seed):
    gen = np.random.default_rng(seed)
    h = gen.normal(size=11) + 1j * gen.normal(size=11)
    estimate = estimate_phase_shift(h * np.exp(1j * theta), h)
    assert abs(np.angle(np.exp(1j * (estimate - theta)))) < 1e-8
