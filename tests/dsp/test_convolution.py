"""Tests for the Eq. 5 convolution matrix and FFT correlation helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import convolution_matrix, cross_correlate_full, autocorrelation
from repro.errors import ShapeError


class TestConvolutionMatrix:
    def test_matches_numpy_convolve_real(self, rng):
        x = rng.normal(size=20)
        h = rng.normal(size=5)
        assert np.allclose(convolution_matrix(x, 5) @ h, np.convolve(x, h))

    def test_matches_numpy_convolve_complex(self, rng):
        x = rng.normal(size=16) + 1j * rng.normal(size=16)
        h = rng.normal(size=3) + 1j * rng.normal(size=3)
        assert np.allclose(convolution_matrix(x, 3) @ h, np.convolve(x, h))

    def test_shape_is_eq5(self):
        x = np.ones(10)
        matrix = convolution_matrix(x, 4)
        assert matrix.shape == (13, 4)

    def test_single_tap_is_identity_like(self):
        x = np.arange(1.0, 6.0)
        matrix = convolution_matrix(x, 1)
        assert np.allclose(matrix[:, 0], x)

    def test_columns_are_shifts(self, rng):
        x = rng.normal(size=8)
        matrix = convolution_matrix(x, 3)
        assert np.allclose(matrix[1 : 1 + 8, 1], x)
        assert np.allclose(matrix[2 : 2 + 8, 2], x)

    def test_rejects_2d_input(self):
        with pytest.raises(ShapeError):
            convolution_matrix(np.ones((3, 3)), 2)

    def test_rejects_zero_taps(self):
        with pytest.raises(ShapeError):
            convolution_matrix(np.ones(4), 0)

    @given(
        n=st.integers(min_value=1, max_value=30),
        taps=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_convolution_identity(self, n, taps, seed):
        gen = np.random.default_rng(seed)
        x = gen.normal(size=max(n, taps))
        h = gen.normal(size=taps)
        assert np.allclose(
            convolution_matrix(x, taps) @ h, np.convolve(x, h)
        )


class TestCrossCorrelateFull:
    def test_matches_numpy_correlate(self, rng):
        a = rng.normal(size=50) + 1j * rng.normal(size=50)
        b = rng.normal(size=20) + 1j * rng.normal(size=20)
        assert np.allclose(
            cross_correlate_full(a, b), np.correlate(a, b, mode="full")
        )

    def test_zero_lag_is_inner_product(self, rng):
        a = rng.normal(size=12) + 1j * rng.normal(size=12)
        full = cross_correlate_full(a, a)
        assert np.isclose(full[len(a) - 1], np.vdot(a, a))

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            cross_correlate_full(np.ones((2, 2)), np.ones(2))


class TestAutocorrelation:
    def test_lag_zero_is_energy(self, rng):
        x = rng.normal(size=30) + 1j * rng.normal(size=30)
        r = autocorrelation(x, 4)
        assert np.isclose(r[0], np.sum(np.abs(x) ** 2))

    def test_matches_direct_sum(self, rng):
        x = rng.normal(size=25)
        r = autocorrelation(x, 3)
        for k in range(4):
            direct = np.sum(x[k:] * x[: len(x) - k])
            assert np.isclose(r[k], direct)

    def test_negative_max_lag_rejected(self):
        with pytest.raises(ShapeError):
            autocorrelation(np.ones(5), -1)
