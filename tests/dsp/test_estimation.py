"""Tests for LS channel estimation (Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import apply_fir_channel, ls_channel_estimate
from repro.errors import ShapeError


def _random_signal(rng, n):
    return rng.normal(size=n) + 1j * rng.normal(size=n)


class TestLSFullMode:
    def test_recovers_exact_channel_noiseless(self, rng):
        x = _random_signal(rng, 200)
        h = _random_signal(rng, 5)
        y = apply_fir_channel(x, h)
        estimate = ls_channel_estimate(x, y, 5)
        assert np.allclose(estimate, h, atol=1e-9)

    def test_direct_and_fft_paths_agree(self, rng):
        x = _random_signal(rng, 5000)
        h = _random_signal(rng, 11)
        y = apply_fir_channel(x, h)
        direct = ls_channel_estimate(x, y, 11, method="direct")
        fft = ls_channel_estimate(x, y, 11, method="fft")
        assert np.allclose(direct, fft, atol=1e-7)

    def test_noise_robustness(self, rng):
        x = _random_signal(rng, 4000)
        h = np.array([1.0, 0.4 + 0.2j, 0.1j])
        y = apply_fir_channel(x, h)
        y += 0.1 * _random_signal(rng, len(y))
        estimate = ls_channel_estimate(x, y, 3)
        assert np.max(np.abs(estimate - h)) < 0.05

    def test_overmodelled_taps_are_near_zero(self, rng):
        x = _random_signal(rng, 500)
        h = np.array([1.0, 0.5])
        y = apply_fir_channel(x, h)
        estimate = ls_channel_estimate(x, y, 6)
        assert np.allclose(estimate[:2], h, atol=1e-8)
        assert np.max(np.abs(estimate[2:])) < 1e-8

    def test_short_y_padded(self, rng):
        x = _random_signal(rng, 100)
        h = np.array([1.0 + 0j])
        y = apply_fir_channel(x, h)[:50]
        estimate = ls_channel_estimate(x, y, 1)
        # Half the signal is treated as zeros; the estimate shrinks.
        assert 0.3 < abs(estimate[0]) < 1.0

    def test_absorbs_global_phase(self, rng):
        x = _random_signal(rng, 300)
        h = _random_signal(rng, 4)
        phase = np.exp(1j * 1.234)
        y = apply_fir_channel(x, h) * phase
        estimate = ls_channel_estimate(x, y, 4)
        assert np.allclose(estimate, h * phase, atol=1e-9)


class TestLSValidMode:
    def test_recovers_channel_with_contaminated_tail(self, rng):
        # Simulate preamble-based estimation: y continues past the window.
        full = _random_signal(rng, 400)
        h = _random_signal(rng, 4)
        y = apply_fir_channel(full, h)
        window = 150
        estimate = ls_channel_estimate(
            full[:window], y[: window + 10], 4, mode="valid"
        )
        assert np.allclose(estimate, h, atol=1e-9)

    def test_full_mode_biased_by_tail_valid_mode_not(self, rng):
        full = _random_signal(rng, 400)
        h = np.array([1.0, 0.5 + 0.3j, 0.2])
        y = apply_fir_channel(full, h)
        window = 100
        valid = ls_channel_estimate(full[:window], y, 3, mode="valid")
        biased = ls_channel_estimate(
            full[:window], y[: window + 2], 3, mode="full"
        )
        assert np.max(np.abs(valid - h)) < 1e-9
        assert np.max(np.abs(biased - h)) > 1e-3

    def test_requires_long_y(self, rng):
        x = _random_signal(rng, 50)
        with pytest.raises(ShapeError):
            ls_channel_estimate(x, x[:30], 3, mode="valid")


class TestLSValidation:
    def test_rejects_unknown_mode(self, rng):
        x = _random_signal(rng, 30)
        with pytest.raises(ShapeError):
            ls_channel_estimate(x, x, 2, mode="banana")

    def test_rejects_short_reference(self, rng):
        with pytest.raises(ShapeError):
            ls_channel_estimate(np.ones(3), np.ones(10), 5)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            ls_channel_estimate(np.ones((3, 3)), np.ones(9), 2)


@given(
    num_taps=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=20, deadline=None)
def test_property_ls_inverts_convolution(num_taps, seed):
    gen = np.random.default_rng(seed)
    x = gen.normal(size=300) + 1j * gen.normal(size=300)
    h = gen.normal(size=num_taps) + 1j * gen.normal(size=num_taps)
    y = np.convolve(x, h)
    estimate = ls_channel_estimate(x, y, num_taps)
    assert np.allclose(estimate, h, atol=1e-7)
