"""Tests for ZF/MMSE equalization (Eqs. 6-7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import (
    equalize,
    equalizer_delay,
    mmse_equalizer,
    zero_forcing_equalizer,
)
from repro.errors import ShapeError


class TestZeroForcing:
    def test_inverts_identity_channel(self):
        c = zero_forcing_equalizer(np.array([1.0 + 0j]), 5)
        combined = np.convolve(np.array([1.0 + 0j]), c)
        delay = equalizer_delay(1, 5)
        assert np.isclose(combined[delay], 1.0, atol=1e-9)

    def test_combined_response_is_near_impulse(self, rng):
        h = np.array([1.0, 0.45 + 0.2j, 0.15 - 0.1j])
        c = zero_forcing_equalizer(h, 31)
        combined = np.convolve(h, c)
        delay = equalizer_delay(3, 31)
        assert abs(combined[delay]) > 0.95
        others = np.delete(combined, delay)
        assert np.max(np.abs(others)) < 0.1

    def test_recovers_signal_through_channel(self, rng):
        x = rng.normal(size=500) + 1j * rng.normal(size=500)
        h = np.array([1.0, 0.5 + 0.2j, 0.2, 0.1j])
        y = np.convolve(x, h)
        delay = equalizer_delay(4, 41)
        c = zero_forcing_equalizer(h, 41, delay)
        z = equalize(y, c, delay, output_length=len(x))
        # Edge taps suffer from truncation; check the interior.
        assert np.max(np.abs(z[20:-40] - x[20:-40])) < 0.05

    def test_custom_delay_position(self):
        h = np.array([1.0 + 0j, 0.3])
        c0 = zero_forcing_equalizer(h, 9, delay=0)
        c5 = zero_forcing_equalizer(h, 9, delay=5)
        assert not np.allclose(c0, c5)

    def test_rejects_bad_delay(self):
        with pytest.raises(ShapeError):
            zero_forcing_equalizer(np.array([1.0 + 0j]), 4, delay=10)

    def test_rejects_2d_channel(self):
        with pytest.raises(ShapeError):
            zero_forcing_equalizer(np.ones((2, 2)), 4)

    def test_scaling_invariance(self):
        # ZF of a scaled channel is the inverse-scaled equalizer.
        h = np.array([1.0, 0.4 + 0.1j, 0.2])
        c1 = zero_forcing_equalizer(h, 15)
        c2 = zero_forcing_equalizer(2.0 * h, 15)
        assert np.allclose(c1, 2.0 * c2, atol=1e-9)


class TestMMSE:
    def test_reduces_to_zf_at_zero_noise(self):
        h = np.array([1.0, 0.5 + 0.2j, 0.1])
        zf = zero_forcing_equalizer(h, 21)
        mmse = mmse_equalizer(h, 21, noise_variance=0.0)
        assert np.allclose(zf, mmse, atol=1e-7)

    def test_noise_regularizes_taps(self):
        # Deep spectral null: ZF blows up, MMSE stays bounded.
        h = np.array([1.0, -0.98 + 0j])
        zf = zero_forcing_equalizer(h, 31)
        mmse = mmse_equalizer(h, 31, noise_variance=0.1)
        assert np.max(np.abs(mmse)) < np.max(np.abs(zf))

    def test_rejects_negative_noise(self):
        with pytest.raises(ShapeError):
            mmse_equalizer(np.array([1.0 + 0j]), 5, noise_variance=-1.0)


class TestEqualize:
    def test_strips_delay(self, rng):
        x = rng.normal(size=100)
        z = equalize(x, np.array([1.0]), delay=0, output_length=100)
        assert np.allclose(z, x)

    def test_pads_to_output_length(self):
        z = equalize(np.ones(5), np.array([1.0]), delay=0, output_length=10)
        assert len(z) == 10
        assert np.allclose(z[5:], 0)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            equalize(np.ones((2, 2)), np.ones(2), 0)


@given(
    taps=st.integers(min_value=1, max_value=5),
    eq_taps=st.integers(min_value=11, max_value=41),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=20, deadline=None)
def test_property_zf_combined_peak_at_delay(taps, eq_taps, seed):
    gen = np.random.default_rng(seed)
    h = gen.normal(size=taps) + 1j * gen.normal(size=taps)
    h[0] += 3.0  # keep the channel minimum-phase-ish / invertible
    c = zero_forcing_equalizer(h, eq_taps)
    combined = np.convolve(h, c)
    delay = equalizer_delay(taps, eq_taps)
    assert np.argmax(np.abs(combined)) == delay
