"""Tests for fractional-delay tap synthesis and DSP metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import (
    complex_mse,
    error_vector_magnitude,
    fractional_delay_taps,
    normalized_correlation,
    synthesize_taps,
)
from repro.errors import ShapeError


class TestFractionalDelayTaps:
    def test_integer_delay_is_unit_impulse(self):
        taps = fractional_delay_taps(3.0, 11)
        assert np.isclose(taps[3], 1.0)
        others = np.delete(taps, 3)
        assert np.max(np.abs(others)) < 1e-12

    def test_half_sample_delay_spreads_symmetrically(self):
        taps = fractional_delay_taps(4.5, 11)
        assert np.isclose(taps[4], taps[5])
        assert abs(taps[4]) > 0.5

    def test_energy_near_unity(self):
        for delay in (2.0, 2.3, 2.5, 2.9):
            taps = fractional_delay_taps(delay, 15)
            assert 0.8 < np.sum(taps**2) < 1.1

    def test_rejects_bad_args(self):
        with pytest.raises(ShapeError):
            fractional_delay_taps(1.0, 0)
        with pytest.raises(ShapeError):
            fractional_delay_taps(1.0, 5, window_half_width=0)


class TestSynthesizeTaps:
    def test_single_arrival(self):
        taps = synthesize_taps(
            np.array([2.0 + 1j]), np.array([5.0]), 11
        )
        assert np.isclose(taps[5], 2.0 + 1j)

    def test_superposition(self):
        a = synthesize_taps(np.array([1.0 + 0j]), np.array([2.0]), 8)
        b = synthesize_taps(np.array([0.5j]), np.array([4.0]), 8)
        both = synthesize_taps(
            np.array([1.0, 0.5j]), np.array([2.0, 4.0]), 8
        )
        assert np.allclose(both, a + b)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            synthesize_taps(np.ones(2), np.ones(3), 5)


class TestComplexMSE:
    def test_zero_for_identical(self, rng):
        h = rng.normal(size=5) + 1j * rng.normal(size=5)
        assert complex_mse(h, h) == 0.0

    def test_known_value(self):
        a = np.array([1 + 1j, 0.0])
        b = np.array([0.0, 0.0])
        assert complex_mse(a, b) == pytest.approx(1.0)

    def test_symmetry(self, rng):
        a = rng.normal(size=4) + 1j * rng.normal(size=4)
        b = rng.normal(size=4) + 1j * rng.normal(size=4)
        assert complex_mse(a, b) == pytest.approx(complex_mse(b, a))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            complex_mse(np.empty(0), np.empty(0))


class TestNormalizedCorrelation:
    def test_collinear_is_one(self, rng):
        a = rng.normal(size=20) + 1j * rng.normal(size=20)
        assert normalized_correlation(a, 3j * a) == pytest.approx(1.0)

    def test_orthogonal_is_zero(self):
        a = np.array([1.0, 0.0], dtype=complex)
        b = np.array([0.0, 1.0], dtype=complex)
        assert normalized_correlation(a, b) == pytest.approx(0.0)

    def test_zero_vector(self):
        assert normalized_correlation(np.zeros(3), np.ones(3)) == 0.0

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_bounded(self, seed):
        gen = np.random.default_rng(seed)
        a = gen.normal(size=16) + 1j * gen.normal(size=16)
        b = gen.normal(size=16) + 1j * gen.normal(size=16)
        assert 0.0 <= normalized_correlation(a, b) <= 1.0 + 1e-12


class TestEVM:
    def test_zero_for_identical(self, rng):
        a = rng.normal(size=10) + 1j * rng.normal(size=10)
        assert error_vector_magnitude(a, a) == 0.0

    def test_scales_with_error(self):
        ref = np.ones(100, dtype=complex)
        noisy = ref + 0.1
        assert error_vector_magnitude(noisy, ref) == pytest.approx(0.1)

    def test_rejects_zero_reference(self):
        with pytest.raises(ShapeError):
            error_vector_magnitude(np.ones(3), np.zeros(3))
