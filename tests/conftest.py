"""Shared fixtures: tiny-scale components and datasets.

Heavy objects are session-scoped so the whole suite builds them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.dataset import build_components, generate_dataset


@pytest.fixture(scope="session")
def tiny_config() -> SimulationConfig:
    return SimulationConfig.tiny()


@pytest.fixture(scope="session")
def tiny_components(tiny_config):
    return build_components(tiny_config)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_config, tiny_components):
    return generate_dataset(tiny_config, tiny_components)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
