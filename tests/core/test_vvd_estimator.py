"""Integration tests for the VVD estimator and the blockage extension."""

import numpy as np
import pytest

from repro.core import BlockageDetector, VVDEstimator
from repro.dataset import synthesize_received
from repro.errors import NotFittedError
from repro.estimation.base import PacketContext


@pytest.fixture(scope="module")
def trained_vvd(tiny_config, tiny_dataset):
    estimator = VVDEstimator(horizon_frames=0, seed=3)
    estimator.prepare(
        tiny_dataset[:2], tiny_dataset[2:3], tiny_config
    )
    return estimator


def _ctx(components, dataset, set_index, packet_index):
    measurement_set = dataset[set_index]
    record = measurement_set.packets[packet_index]
    return PacketContext(
        measurement_set=measurement_set,
        index=packet_index,
        record=record,
        received=synthesize_received(components, record),
        receiver=components.receiver,
    )


class TestVVDEstimator:
    def test_unprepared_raises(self, tiny_components, tiny_dataset):
        with pytest.raises(NotFittedError):
            VVDEstimator().estimate(
                _ctx(tiny_components, tiny_dataset, 3, 0)
            )

    def test_estimates_have_tap_shape(
        self, trained_vvd, tiny_components, tiny_dataset, tiny_config
    ):
        trained_vvd.reset(tiny_dataset[3])
        estimate = trained_vvd.estimate(
            _ctx(tiny_components, tiny_dataset, 3, 2)
        )
        assert estimate.taps.shape == (tiny_config.channel.num_taps,)
        assert estimate.needs_phase_alignment
        assert estimate.canonical_taps is estimate.taps

    def test_prepare_is_idempotent(
        self, trained_vvd, tiny_dataset, tiny_config
    ):
        model_before = trained_vvd.trained.model
        trained_vvd.prepare(
            tiny_dataset[:2], tiny_dataset[2:3], tiny_config
        )
        assert trained_vvd.trained.model is model_before

    def test_frame_prediction_cached(
        self, trained_vvd, tiny_components, tiny_dataset
    ):
        trained_vvd.reset(tiny_dataset[3])
        ctx = _ctx(tiny_components, tiny_dataset, 3, 2)
        first = trained_vvd.estimate(ctx).taps
        second = trained_vvd.estimate(ctx).taps
        assert first is second  # same cached array object

    def test_horizon_names(self):
        assert VVDEstimator(0).name == "VVD-Current"
        assert VVDEstimator(1).name == "VVD-33.3ms Future"
        assert VVDEstimator(3).name == "VVD-100ms Future"

    def test_prediction_magnitude_sane(
        self, trained_vvd, tiny_components, tiny_dataset
    ):
        trained_vvd.reset(tiny_dataset[3])
        estimate = trained_vvd.estimate(
            _ctx(tiny_components, tiny_dataset, 3, 5)
        )
        power = float(np.sum(np.abs(estimate.taps) ** 2))
        assert 0.01 < power < 10.0

    def test_standardizer_stored(self, trained_vvd, tiny_config):
        if tiny_config.vvd.standardize_inputs:
            assert trained_vvd.trained.image_mean is not None
            assert np.all(trained_vvd.trained.image_std > 0)


class TestBlockageDetector:
    def test_beats_majority_baseline(self, tiny_config, tiny_dataset):
        detector = BlockageDetector(epochs=300).fit(
            tiny_dataset[:3], tiny_config
        )
        accuracy = detector.accuracy(tiny_dataset[3:], tiny_config)
        labels = [
            p.los_blocked for s in tiny_dataset[3:] for p in s.packets
        ]
        majority = max(np.mean(labels), 1.0 - np.mean(labels))
        assert accuracy >= majority - 0.1

    def test_probabilities_bounded(self, tiny_config, tiny_dataset):
        detector = BlockageDetector(epochs=50).fit(
            tiny_dataset[:2], tiny_config
        )
        frames = tiny_dataset[3].frames[:10] / tiny_config.camera.max_depth_m
        probabilities = detector.predict_proba(frames)
        assert np.all(probabilities >= 0) and np.all(probabilities <= 1)

    def test_unfitted_raises(self, tiny_dataset):
        with pytest.raises(NotFittedError):
            BlockageDetector().predict(tiny_dataset[0].frames[:1])
