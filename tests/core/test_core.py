"""Tests for the VVD core: codec, normalization, model, targets."""

import numpy as np
import pytest

from repro.config import SimulationConfig, VVDConfig
from repro.core import (
    CIRNormalizer,
    build_training_data,
    build_vvd_cnn,
    cir_to_real,
    horizon_frame_offset,
    real_to_cir,
)
from repro.errors import ConfigurationError, NotFittedError, ShapeError


class TestCodec:
    def test_round_trip(self, rng):
        cir = rng.normal(size=11) + 1j * rng.normal(size=11)
        assert np.allclose(real_to_cir(cir_to_real(cir)), cir)

    def test_layout_is_re_then_im(self):
        cir = np.array([1 + 2j, 3 + 4j])
        encoded = cir_to_real(cir)
        assert np.array_equal(encoded, [1.0, 3.0, 2.0, 4.0])

    def test_output_width_is_twice_taps(self, rng):
        # 11 taps -> 22 outputs (Fig. 6).
        cir = rng.normal(size=11) + 1j * rng.normal(size=11)
        assert cir_to_real(cir).shape == (22,)

    def test_batch_round_trip(self, rng):
        cirs = rng.normal(size=(5, 11)) + 1j * rng.normal(size=(5, 11))
        assert np.allclose(real_to_cir(cir_to_real(cirs)), cirs)

    def test_odd_length_rejected(self):
        with pytest.raises(ShapeError):
            real_to_cir(np.ones(5))


class TestNormalizer:
    def test_scale_is_max_abs(self, rng):
        cirs = rng.normal(size=(20, 11)) + 1j * rng.normal(size=(20, 11))
        normalizer = CIRNormalizer().fit(cirs)
        assert normalizer.scale == pytest.approx(np.max(np.abs(cirs)))

    def test_round_trip(self, rng):
        cirs = rng.normal(size=(4, 11)) + 1j * rng.normal(size=(4, 11))
        normalizer = CIRNormalizer().fit(cirs)
        assert np.allclose(
            normalizer.inverse(normalizer.transform(cirs)), cirs
        )

    def test_transform_bounded(self, rng):
        cirs = 100.0 * (rng.normal(size=(8, 5)) + 1j * rng.normal(size=(8, 5)))
        normalized = CIRNormalizer().fit(cirs).transform(cirs)
        assert np.max(np.abs(normalized)) <= 1.0 + 1e-12

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            CIRNormalizer().transform(np.ones(3))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            CIRNormalizer().fit(np.empty((0, 11)))


class TestModelBuilder:
    def test_paper_architecture_shapes(self):
        model = build_vvd_cnn((50, 90), 11, VVDConfig(
            conv_filters=(32, 32, 64), dense_units=256))
        assert model.input_shape == (50, 90, 1)
        assert model.output_shape == (22,)

    def test_output_matches_num_taps(self):
        model = build_vvd_cnn((50, 90), 7)
        assert model.output_shape == (14,)

    def test_max_pool_variant(self):
        from repro.nn import MaxPooling2D

        model = build_vvd_cnn(
            (50, 90), 11, VVDConfig(pooling="max")
        )
        assert any(isinstance(l, MaxPooling2D) for l in model.layers)

    def test_batch_norm_variant(self):
        from repro.nn import BatchNorm2D

        model = build_vvd_cnn(
            (50, 90), 11, VVDConfig(use_batch_norm=True)
        )
        assert any(isinstance(l, BatchNorm2D) for l in model.layers)

    def test_too_small_input_rejected(self):
        with pytest.raises(ConfigurationError):
            build_vvd_cnn((8, 8), 11)

    def test_forward_pass_runs(self, rng):
        model = build_vvd_cnn((50, 90), 11)
        out = model.predict(
            rng.normal(size=(2, 50, 90, 1)).astype(np.float32)
        )
        assert out.shape == (2, 22)


class TestHorizons:
    def test_paper_offsets(self):
        assert horizon_frame_offset(0.0, 1 / 30) == 0
        assert horizon_frame_offset(1 / 30, 1 / 30) == 1
        assert horizon_frame_offset(0.1, 1 / 30) == 3

    def test_negative_rejected(self):
        with pytest.raises(ShapeError):
            horizon_frame_offset(-0.1, 1 / 30)


class TestTrainingData:
    def test_pairs_assembled(self, tiny_config, tiny_dataset):
        data = build_training_data(tiny_dataset[:2], tiny_config)
        assert data.num_samples == sum(
            s.num_packets for s in tiny_dataset[:2]
        )
        rows, cols = tiny_config.camera.output_shape
        assert data.images.shape[1:] == (rows, cols, 1)
        assert data.targets.shape[1] == tiny_config.channel.num_taps

    def test_images_normalized(self, tiny_config, tiny_dataset):
        data = build_training_data(tiny_dataset[:1], tiny_config)
        assert data.images.min() >= 0.0
        assert data.images.max() <= 1.0

    def test_subsampling(self, tiny_config, tiny_dataset):
        full = build_training_data(tiny_dataset[:1], tiny_config)
        half = build_training_data(
            tiny_dataset[:1], tiny_config, subsample=2
        )
        assert half.num_samples == (full.num_samples + 1) // 2

    def test_horizon_shifts_frames(self, tiny_config, tiny_dataset):
        current = build_training_data(tiny_dataset[:1], tiny_config, 0)
        future = build_training_data(tiny_dataset[:1], tiny_config, 3)
        # Same targets (CIRs), but earlier input frames.
        assert future.num_samples <= current.num_samples
        if future.num_samples and current.num_samples:
            assert not np.array_equal(
                current.images[: future.num_samples], future.images
            )

    def test_real_targets_scaling(self, tiny_config, tiny_dataset):
        data = build_training_data(tiny_dataset[:1], tiny_config)
        scaled = data.real_targets(scale=2.0)
        unscaled = data.real_targets(scale=1.0)
        assert np.allclose(scaled * 2.0, unscaled, atol=1e-6)

    def test_bad_args(self, tiny_config, tiny_dataset):
        with pytest.raises(ShapeError):
            build_training_data(tiny_dataset[:1], tiny_config, subsample=0)
        with pytest.raises(ShapeError):
            build_training_data(
                tiny_dataset[:1], tiny_config, horizon_frames=-1
            )
