"""Checkpoint contract: TrainedVVD save -> load is bit-identical."""

import numpy as np
import pytest

from repro.core import (
    checkpoint_complete,
    load_trained_vvd,
    save_trained_vvd,
    train_vvd,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def trained(tiny_config, tiny_dataset):
    return train_vvd(
        list(tiny_dataset[:2]), [tiny_dataset[2]], tiny_config, seed=3
    )


@pytest.fixture()
def probe_images(trained):
    rng = np.random.default_rng(99)
    rows, cols = trained.input_shape
    return rng.uniform(0.0, 1.0, size=(4, rows, cols)).astype(np.float32)


class TestRoundTrip:
    def test_predictions_bit_identical(
        self, trained, tiny_config, tmp_path, probe_images
    ):
        directory = tmp_path / "ckpt"
        save_trained_vvd(trained, directory, tiny_config.channel.num_taps)
        assert checkpoint_complete(directory)
        loaded = load_trained_vvd(directory, tiny_config.vvd)
        original = trained.predict_cir(probe_images)
        restored = loaded.predict_cir(probe_images)
        assert np.array_equal(original, restored)

    def test_history_and_normalizer_round_trip(
        self, trained, tiny_config, tmp_path
    ):
        directory = tmp_path / "ckpt"
        save_trained_vvd(trained, directory, tiny_config.channel.num_taps)
        loaded = load_trained_vvd(directory, tiny_config.vvd)
        assert loaded.history.train_loss == trained.history.train_loss
        assert loaded.history.val_loss == trained.history.val_loss
        assert (
            loaded.history.learning_rates
            == trained.history.learning_rates
        )
        assert loaded.history.best_epoch == trained.history.best_epoch
        assert loaded.normalizer.scale == trained.normalizer.scale
        assert loaded.horizon_frames == trained.horizon_frames
        assert loaded.input_shape == trained.input_shape
        assert np.array_equal(loaded.image_mean, trained.image_mean)
        assert np.array_equal(loaded.image_std, trained.image_std)

    def test_weights_round_trip_exactly(
        self, trained, tiny_config, tmp_path
    ):
        directory = tmp_path / "ckpt"
        save_trained_vvd(trained, directory, tiny_config.channel.num_taps)
        loaded = load_trained_vvd(directory, tiny_config.vvd)
        for saved, restored in zip(
            trained.model.get_weights(), loaded.model.get_weights()
        ):
            assert np.array_equal(saved, restored)
            assert saved.dtype == restored.dtype


class TestBatchNormRoundTrip:
    def test_running_statistics_round_trip(
        self, tiny_config, tiny_dataset, tmp_path
    ):
        """The Sec. 4 batch-norm ablation must round-trip its running
        statistics, not just `parameters()`."""
        import dataclasses

        config = tiny_config.replace(
            vvd=dataclasses.replace(tiny_config.vvd, use_batch_norm=True)
        )
        trained = train_vvd(
            list(tiny_dataset[:2]), [tiny_dataset[2]], config, seed=3
        )
        directory = tmp_path / "bn-ckpt"
        save_trained_vvd(trained, directory, config.channel.num_taps)
        loaded = load_trained_vvd(directory, config.vvd)
        rng = np.random.default_rng(1)
        rows, cols = trained.input_shape
        images = rng.uniform(0.0, 1.0, size=(3, rows, cols)).astype(
            np.float32
        )
        assert np.array_equal(
            trained.predict_cir(images), loaded.predict_cir(images)
        )


class TestErrorPaths:
    def test_missing_directory_rejected(self, tiny_config, tmp_path):
        with pytest.raises(ConfigurationError):
            load_trained_vvd(tmp_path / "nope", tiny_config.vvd)

    def test_partial_checkpoint_rejected(
        self, trained, tiny_config, tmp_path
    ):
        directory = tmp_path / "ckpt"
        save_trained_vvd(trained, directory, tiny_config.channel.num_taps)
        (directory / "meta.json").unlink()
        assert not checkpoint_complete(directory)
        with pytest.raises(ConfigurationError):
            load_trained_vvd(directory, tiny_config.vvd)

    def test_architecture_mismatch_rejected(
        self, trained, tiny_config, tmp_path
    ):
        import dataclasses

        directory = tmp_path / "ckpt"
        save_trained_vvd(trained, directory, tiny_config.channel.num_taps)
        wrong = dataclasses.replace(
            tiny_config.vvd, conv_filters=(4, 4), dense_units=16
        )
        with pytest.raises(ConfigurationError):
            load_trained_vvd(directory, wrong)
