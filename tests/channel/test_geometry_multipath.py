"""Tests for geometry helpers and multipath construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import (
    PropagationPath,
    build_static_paths,
    human_scatter_path,
    mirror_point,
    path_length,
    segment_clearance,
)
from repro.channel.geometry import path_clearance, plane_intersection
from repro.config import RoomConfig
from repro.errors import ShapeError


class TestGeometry:
    def test_mirror_point(self):
        mirrored = mirror_point((1.0, 2.0, 3.0), 0, 0.0)
        assert np.allclose(mirrored, [-1.0, 2.0, 3.0])
        mirrored = mirror_point((1.0, 2.0, 3.0), 2, 4.0)
        assert np.allclose(mirrored, [1.0, 2.0, 5.0])

    def test_mirror_is_involution(self, rng):
        p = rng.uniform(0, 5, 3)
        assert np.allclose(mirror_point(mirror_point(p, 1, 2.0), 1, 2.0), p)

    def test_path_length_straight(self):
        assert path_length([(0, 0, 0), (3, 4, 0)]) == pytest.approx(5.0)

    def test_path_length_polyline(self):
        pts = [(0, 0, 0), (1, 0, 0), (1, 1, 0)]
        assert path_length(pts) == pytest.approx(2.0)

    def test_plane_intersection_midpoint(self):
        hit = plane_intersection((0, 0, 0), (2, 2, 2), 0, 1.0)
        assert np.allclose(hit, [1, 1, 1])

    def test_plane_intersection_miss(self):
        assert plane_intersection((0, 0, 0), (1, 0, 0), 1, 5.0) is None

    def test_segment_clearance_perpendicular(self):
        d = segment_clearance((0, 0, 1), (10, 0, 1), (5.0, 3.0), 2.0)
        assert d == pytest.approx(3.0)

    def test_segment_clearance_above_head(self):
        # Path entirely above the blocker's height.
        d = segment_clearance((0, 0, 2.5), (10, 0, 2.5), (5.0, 0.0), 1.8)
        assert d == np.inf

    def test_segment_clearance_partially_above(self):
        # Path rises from z=1 to z=3; only the low part can be blocked.
        d = segment_clearance((0, 0, 1.0), (10, 0, 3.0), (9.0, 0.0), 1.8)
        # Closest in-range point is where z = 1.8 -> x = 4.
        assert d == pytest.approx(0.0, abs=1e-9) or d >= 0.0
        d_far = segment_clearance((0, 0, 1.0), (10, 0, 3.0), (9.9, 5.0), 1.8)
        assert d_far > 5.0

    def test_clearance_endpoint_clamping(self):
        d = segment_clearance((0, 0, 1), (1, 0, 1), (5.0, 0.0), 2.0)
        assert d == pytest.approx(4.0)

    def test_path_clearance_is_min_over_segments(self):
        pts = [(0, 0, 1), (5, 5, 1), (10, 0, 1)]
        d = path_clearance(pts, (5.0, 4.0), 2.0)
        # Perpendicular distance from (5, 4) to both diagonal segments.
        assert d == pytest.approx(1.0 / np.sqrt(2.0))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ShapeError):
            path_length([(0, 0, 0)])
        with pytest.raises(ShapeError):
            segment_clearance((0, 0), (1, 1), (0, 0), 1.0)

    @given(
        x=st.floats(min_value=0.1, max_value=7.9),
        y=st.floats(min_value=0.1, max_value=5.9),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_clearance_nonnegative(self, x, y):
        d = segment_clearance((1, 3, 1.2), (7, 3, 1.2), (x, y), 1.8)
        assert d >= 0.0


class TestMultipath:
    def test_static_paths_include_los_and_walls(self):
        room = RoomConfig()
        paths = build_static_paths(room, 0.12)
        kinds = [p.kind for p in paths]
        assert kinds[0] == "los"
        assert "wall_x0" in kinds and "wall_y1" in kinds
        assert "ceiling" in kinds
        assert kinds.count("scatter") == len(room.scatterers)

    def test_los_is_shortest(self):
        paths = build_static_paths(RoomConfig(), 0.12)
        los = paths[0].length_m
        assert all(p.length_m >= los for p in paths[1:])

    def test_gain_decreases_with_length(self):
        paths = build_static_paths(RoomConfig(), 0.12)
        los = paths[0]
        assert all(abs(p.gain) < abs(los.gain) for p in paths[1:])

    def test_reflection_geometry_touches_wall(self):
        paths = build_static_paths(RoomConfig(), 0.12)
        wall = next(p for p in paths if p.kind == "wall_y0")
        bounce = wall.points[1]
        assert bounce[1] == pytest.approx(0.0)

    def test_human_scatter_path_tracks_position(self):
        room = RoomConfig()
        a = human_scatter_path(room, 0.12, (3.0, 2.0), 1.1, 0.1)
        b = human_scatter_path(room, 0.12, (4.8, 4.2), 1.1, 0.1)
        assert a.length_m != b.length_m
        assert a.kind == "human"

    def test_carrier_phase_rotates_with_length(self):
        room = RoomConfig()
        a = human_scatter_path(room, 1.0, (3.0, 3.01), 1.1, 1.0)
        b = human_scatter_path(room, 1.0, (3.3, 3.01), 1.1, 1.0)
        # Different path lengths -> different phases.
        assert not np.isclose(np.angle(a.gain), np.angle(b.gain))
