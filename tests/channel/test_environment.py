"""Tests for blockage, noise, mobility, and the indoor environment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import (
    IndoorEnvironment,
    RandomWaypointMobility,
    awgn,
    blockage_attenuation,
    noise_power_for_snr,
    sample_trajectory,
)
from repro.config import ChannelConfig, MobilityConfig, PhyConfig, RoomConfig
from repro.errors import ShapeError


@pytest.fixture(scope="module")
def environment():
    return IndoorEnvironment(RoomConfig(), ChannelConfig(), PhyConfig())


class TestBlockage:
    def test_deep_loss_inside_radius(self):
        factor = blockage_attenuation(0.0, 0.22, 20.0, 0.1)
        assert factor < 0.15

    def test_unity_far_away(self):
        factor = blockage_attenuation(5.0, 0.22, 20.0, 0.1)
        assert factor == pytest.approx(1.0, abs=1e-6)

    def test_monotone_in_clearance(self):
        factors = [
            blockage_attenuation(c, 0.22, 20.0, 0.2)
            for c in np.linspace(0, 2, 40)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(factors, factors[1:]))

    def test_infinite_clearance(self):
        assert blockage_attenuation(np.inf, 0.22, 20.0, 0.1) == 1.0

    @given(clearance=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_property_bounded(self, clearance):
        factor = blockage_attenuation(clearance, 0.22, 16.0, 0.25)
        floor = 10 ** (-16.0 / 20.0)
        assert floor * 0.99 <= factor <= 1.0 + 1e-9


class TestNoise:
    def test_power_for_snr(self):
        assert noise_power_for_snr(1.0, 10.0) == pytest.approx(0.1)
        assert noise_power_for_snr(2.0, 3.0) == pytest.approx(
            2.0 / 10 ** 0.3
        )

    def test_awgn_power(self, rng):
        samples = awgn(rng, 200_000, 0.25)
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(0.25, rel=0.02)

    def test_awgn_deterministic_with_seed(self):
        a = awgn(np.random.default_rng(5), 100, 1.0)
        b = awgn(np.random.default_rng(5), 100, 1.0)
        assert np.array_equal(a, b)

    def test_rejects_negative(self, rng):
        with pytest.raises(ShapeError):
            awgn(rng, -1, 1.0)
        with pytest.raises(ShapeError):
            noise_power_for_snr(-1.0, 3.0)


class TestMobility:
    def test_positions_stay_inside_area(self):
        room = RoomConfig()
        walker = RandomWaypointMobility(
            room, MobilityConfig(), np.random.default_rng(0), 60.0
        )
        x0, y0, x1, y1 = room.movement_area
        times = np.linspace(0, 60, 600)
        for t in times:
            x, y = walker.position_at(float(t))
            assert x0 - 1e-9 <= x <= x1 + 1e-9
            assert y0 - 1e-9 <= y <= y1 + 1e-9

    def test_continuity(self):
        walker = RandomWaypointMobility(
            RoomConfig(), MobilityConfig(), np.random.default_rng(1), 30.0
        )
        prev = walker.position_at(0.0)
        max_speed = MobilityConfig().speed_max_mps
        for t in np.arange(0.05, 30, 0.05):
            cur = walker.position_at(float(t))
            assert np.linalg.norm(cur - prev) <= max_speed * 0.05 + 1e-6
            prev = cur

    def test_reproducible(self):
        a = RandomWaypointMobility(
            RoomConfig(), MobilityConfig(), np.random.default_rng(7), 10.0
        )
        b = RandomWaypointMobility(
            RoomConfig(), MobilityConfig(), np.random.default_rng(7), 10.0
        )
        times = np.linspace(0, 10, 50)
        assert np.allclose(sample_trajectory(a, times), sample_trajectory(b, times))


class TestIndoorEnvironment:
    def test_cir_length(self, environment):
        taps = environment.cir((3.0, 2.0))
        assert taps.shape == (ChannelConfig().num_taps,)
        assert taps.dtype == np.complex128

    def test_unblocked_power_near_unity(self, environment):
        assert environment.received_power((0.5, 0.5)) == pytest.approx(
            1.0, rel=0.1
        )

    def test_blockage_reduces_power(self, environment):
        free = environment.received_power((0.5, 0.5))
        blocked = environment.received_power((4.0, 3.0))
        assert blocked < 0.6 * free

    def test_los_blocked_detection(self, environment):
        assert environment.is_los_blocked((4.0, 3.0))
        assert not environment.is_los_blocked((4.0, 4.7))

    def test_dominant_taps_are_six_to_eight(self, environment):
        # Paper Fig. 5a: dominant energy at taps 6-8 (1-based).
        taps = np.abs(environment.cir((0.5, 0.5)))
        dominant = int(np.argmax(taps))
        assert dominant in (5, 6, 7)

    def test_hypothesis_1_mobility_changes_mpcs(self, environment):
        # Different displacement -> clearly different CIR (Sec. 2.2 H1).
        h_far = environment.cir((3.0, 4.5))
        h_blocking = environment.cir((4.0, 3.0))
        assert np.max(np.abs(h_far - h_blocking)) > 0.1

    def test_hypothesis_2_same_displacement_same_mpcs(self, environment):
        # Same position at different "times" -> identical CIR (H2).
        h_1 = environment.cir((3.7, 2.4))
        h_2 = environment.cir((3.7, 2.4))
        assert np.allclose(h_1, h_2)

    def test_cir_smooth_away_from_transition(self, environment):
        h_1 = environment.cir((3.0, 4.5))
        h_2 = environment.cir((3.05, 4.5))
        assert np.max(np.abs(h_1 - h_2)) < 0.05

    def test_determinism_across_instances(self):
        env_a = IndoorEnvironment(RoomConfig(), ChannelConfig(), PhyConfig())
        env_b = IndoorEnvironment(RoomConfig(), ChannelConfig(), PhyConfig())
        assert np.allclose(env_a.cir((3.3, 2.2)), env_b.cir((3.3, 2.2)))


class TestGroupedWalkers:
    def test_follower_tracks_leader_inside_area(self):
        from repro.channel import GroupedFollowerMobility

        room = RoomConfig()
        mobility = MobilityConfig(trajectory="grouped", num_humans=2)
        leader = RandomWaypointMobility(
            room, mobility, np.random.default_rng(3), 30.0
        )
        follower = GroupedFollowerMobility(
            leader, room, mobility, np.random.default_rng(4)
        )
        x0, y0, x1, y1 = room.movement_area
        for t in np.linspace(0, 30, 200):
            pos = follower.position_at(float(t))
            assert x0 - 1e-9 <= pos[0] <= x1 + 1e-9
            assert y0 - 1e-9 <= pos[1] <= y1 + 1e-9
            separation = np.linalg.norm(
                pos - leader.position_at(float(t))
            )
            # Clamping can only shrink the offset, never grow it.
            assert separation <= mobility.group_spread_m + 1e-9

    def test_speed_bands_partition_the_range(self):
        from repro.channel import walker_speed_band

        mobility = MobilityConfig(
            speed_min_mps=0.4,
            speed_max_mps=1.6,
            num_humans=3,
            speed_profile="heterogeneous",
        )
        bands = [walker_speed_band(mobility, i) for i in range(3)]
        assert bands[0][0] == pytest.approx(0.4)
        assert bands[-1][1] == pytest.approx(1.6)
        for (lo_a, hi_a), (lo_b, hi_b) in zip(bands, bands[1:]):
            assert hi_a == pytest.approx(lo_b)  # contiguous, disjoint
            assert lo_a < hi_a

    def test_uniform_profile_gives_everyone_the_full_range(self):
        from repro.channel import walker_speed_band

        mobility = MobilityConfig(num_humans=3)
        for index in range(3):
            assert walker_speed_band(mobility, index) == (
                mobility.speed_min_mps,
                mobility.speed_max_mps,
            )

    def test_build_walkers_primary_is_bit_identical_to_make_walker(self):
        # The single-human seed derivation must not change: existing
        # cached datasets replay through build_walkers.
        from repro.channel import build_walkers, make_walker

        room = RoomConfig()
        mobility = MobilityConfig()
        old = make_walker(
            room, mobility, np.random.default_rng([42, 101, 0]), 20.0
        )
        new = build_walkers(room, mobility, (42, 101, 0), 20.0)
        assert len(new) == 1
        times = np.linspace(0, 20, 100)
        assert np.array_equal(
            sample_trajectory(old, times),
            sample_trajectory(new[0], times),
        )

    def test_build_walkers_grouped_cluster(self):
        from repro.channel import GroupedFollowerMobility, build_walkers

        room = RoomConfig()
        mobility = MobilityConfig(
            trajectory="grouped",
            num_humans=3,
            speed_profile="heterogeneous",
        )
        walkers = build_walkers(room, mobility, (7, 101, 0), 15.0)
        assert len(walkers) == 3
        assert isinstance(walkers[0], RandomWaypointMobility)
        assert all(
            isinstance(w, GroupedFollowerMobility) for w in walkers[1:]
        )
        # Distinct follower seeds -> distinct offsets.
        t = 5.0
        assert not np.allclose(
            walkers[1].position_at(t), walkers[2].position_at(t)
        )
