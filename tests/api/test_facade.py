"""The programmatic facade: CLI parity, observation, resume.

The determinism contract of the API redesign: ``handle.run().text``
is the exact text the equivalent CLI invocation prints, and a second
run of the same spec is a pure manifest replay.  Capacity campaigns
are used throughout — they are pure queueing-model jobs, no PHY or
training, so the tests stay fast.
"""

from __future__ import annotations

import pytest

from repro.api import (
    CampaignStatus,
    CapacityJob,
    GridJob,
    RunOptions,
    SweepJob,
    prepare,
    run_campaign,
)
from repro.campaign.cli import main as cli_main
from repro.errors import ConfigurationError, NotFoundError

CAPACITY_ARGS = dict(links=(2, 4), duration=0.5)
CAPACITY_ARGV = ["capacity", "--links", "2", "4", "--duration", "0.5"]


class TestCliParity:
    def test_outcome_text_matches_cli_stdout(self, tmp_path, capsys):
        api_cache = tmp_path / "api"
        cli_cache = tmp_path / "cli"
        outcome = run_campaign(
            CapacityJob(**CAPACITY_ARGS), cache_dir=str(api_cache)
        )
        capsys.readouterr()
        code = cli_main(CAPACITY_ARGV + ["--cache-dir", str(cli_cache)])
        cli_out = capsys.readouterr().out
        assert code == outcome.exit_code == 0
        normalize = lambda text: text.replace(
            str(cli_cache), "<cache>"
        ).replace(str(api_cache), "<cache>")
        assert normalize(cli_out) == normalize(outcome.text) + "\n"

    def test_same_spec_same_campaign_dir_as_cli(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        handle = prepare(
            CapacityJob(**CAPACITY_ARGS), cache_dir=str(cache)
        )
        assert cli_main(CAPACITY_ARGV + ["--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        # The CLI run landed in exactly the directory the API computed.
        assert handle.directory.is_dir()
        assert handle.manifest_path.exists()


class TestObservation:
    def test_status_lifecycle_and_resume(self, tmp_path):
        handle = prepare(
            CapacityJob(**CAPACITY_ARGS), cache_dir=str(tmp_path)
        )
        status = handle.status()
        assert isinstance(status, CampaignStatus)
        assert status.state == "pending"
        assert status.events == ()

        outcome = handle.run()
        assert outcome.exit_code == 0
        assert len(outcome.executed) == len(handle.campaign.steps)
        assert outcome.skipped == ()
        status = handle.status()
        assert status.state == "done"
        assert status.counts == {"done": len(handle.campaign.steps)}

        # A fresh handle over the same cache resumes every step.
        replay = prepare(
            CapacityJob(**CAPACITY_ARGS), cache_dir=str(tmp_path)
        ).run()
        assert replay.executed == ()
        assert set(replay.skipped) == set(outcome.executed)
        assert "0 executed" not in replay.text.splitlines()[0]
        assert (
            f"steps: 0 executed, {len(outcome.executed)} resumed "
            in replay.text
        )

    def test_events_reload_from_disk(self, tmp_path):
        spec = CapacityJob(**CAPACITY_ARGS)
        runner = prepare(spec, cache_dir=str(tmp_path))
        watcher = prepare(spec, cache_dir=str(tmp_path))
        assert watcher.events() == []
        runner.run()
        events = watcher.events()
        assert {e.status for e in events} == {"done"}
        assert {e.step for e in events} == {
            s.step_id for s in runner.campaign.steps
        }

    def test_results_before_and_after_run(self, tmp_path):
        handle = prepare(
            CapacityJob(**CAPACITY_ARGS), cache_dir=str(tmp_path)
        )
        with pytest.raises(NotFoundError, match="no stored report"):
            handle.results()
        handle.run()
        results = handle.results()
        assert "report" in results
        assert "Capacity curve" in results["report"]


class TestValidation:
    def test_unknown_scenario_raises_not_found(self, tmp_path):
        with pytest.raises(NotFoundError, match="unknown scenario"):
            prepare(
                SweepJob(scenario="atlantis"), cache_dir=str(tmp_path)
            )

    def test_unknown_grid_raises_not_found(self, tmp_path):
        with pytest.raises(NotFoundError, match="unknown grid"):
            prepare(GridJob(grid="atlantis"), cache_dir=str(tmp_path))

    def test_faults_rejected_on_figure_kind(self, tmp_path):
        from repro.api import FigureJob

        handle = prepare(
            FigureJob(names=("table2",)), cache_dir=str(tmp_path)
        )
        with pytest.raises(
            ConfigurationError, match="do not support fault injection"
        ):
            handle.run(RunOptions(faults="flaky-io"))

    def test_results_path_only_for_grids(self, tmp_path):
        grid = prepare(GridJob(), cache_dir=str(tmp_path))
        capacity = prepare(
            CapacityJob(**CAPACITY_ARGS), cache_dir=str(tmp_path)
        )
        assert grid.results_path() is not None
        assert grid.results_path().name == "results.json"
        assert capacity.results_path() is None
