"""Typed job specs: JSON round-trips and CLI-default drift detection.

A spec built with no arguments must describe exactly the campaign the
bare CLI subcommand runs — the defaults live in two renderings (the
dataclass and the argparse parser) and this module keeps them pinned
together.
"""

from __future__ import annotations

import json

import pytest

from repro.api.jobs import (
    JOB_KINDS,
    CapacityJob,
    FigureJob,
    GridJob,
    StreamJob,
    SweepJob,
    TrainJob,
    job_from_dict,
)
from repro.campaign.cli import build_parser
from repro.errors import ConfigurationError

ALL_SPECS = [SweepJob, TrainJob, FigureJob, StreamJob, CapacityJob, GridJob]


def _spec_instance(cls):
    if cls is FigureJob:
        return cls(names=("table2",))
    return cls()


class TestRoundTrip:
    @pytest.mark.parametrize("cls", ALL_SPECS, ids=lambda c: c.kind)
    def test_json_round_trip_is_identity(self, cls):
        spec = _spec_instance(cls)
        data = json.loads(spec.to_json())
        assert data["kind"] == cls.kind
        rebuilt = job_from_dict(data)
        assert rebuilt == spec
        assert rebuilt.to_json() == spec.to_json()

    @pytest.mark.parametrize("cls", ALL_SPECS, ids=lambda c: c.kind)
    def test_canonical_json_is_sorted_and_compact(self, cls):
        text = _spec_instance(cls).to_json()
        data = json.loads(text)
        assert text == json.dumps(
            data, sort_keys=True, separators=(",", ":")
        )

    def test_registry_covers_every_spec(self):
        assert sorted(JOB_KINDS) == sorted(c.kind for c in ALL_SPECS)

    def test_list_fields_normalize_to_tuples(self):
        spec = job_from_dict(
            {"kind": "sweep", "snrs": [0, 5.0], "suite": "quick"}
        )
        assert spec.snrs == (0.0, 5.0)
        spec = job_from_dict({"kind": "train", "horizons": [0, 1, 3]})
        assert spec.horizons == (0, 1, 3)


class TestRejection:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown job kind"):
            job_from_dict({"kind": "bake-cake"})

    def test_missing_kind(self):
        with pytest.raises(ConfigurationError, match="unknown job kind"):
            job_from_dict({"scenario": "reduced"})

    def test_non_dict_payload(self):
        with pytest.raises(ConfigurationError, match="must be an object"):
            job_from_dict(["grid"])

    def test_unknown_field_names_the_field(self):
        with pytest.raises(
            ConfigurationError, match="unknown grid job field.*gird"
        ):
            job_from_dict({"kind": "grid", "gird": "smoke-grid"})

    def test_scalar_where_list_expected(self):
        with pytest.raises(ConfigurationError, match="expects a list"):
            job_from_dict({"kind": "sweep", "snrs": 5.0})

    def test_wrong_element_type_in_list(self):
        with pytest.raises(ConfigurationError, match="expects a list of"):
            job_from_dict({"kind": "train", "horizons": ["soon"]})

    def test_figure_requires_names(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            FigureJob()


class TestCliDefaultDrift:
    """Spec defaults == argparse defaults, field by field."""

    #: kind -> (cli argv, spec fields that mirror parser dests).
    CASES = {
        "sweep": (["sweep"], ["scenario", "snrs", "num_sets", "suite"]),
        "train": (
            ["train"],
            ["scenario", "combinations", "horizons", "seed"],
        ),
        "figure": (["figure", "table2"], ["scenario", "combinations", "seed"]),
        "stream": (
            ["stream"],
            [
                "scenario",
                "links",
                "slots",
                "policies",
                "deadline_slots",
                "horizon",
                "seed",
                "defer_threshold",
                "round_deadline",
                "traffic",
                "qos",
            ],
        ),
        "capacity": (
            ["capacity"],
            [
                "links",
                "duration",
                "traffic",
                "qos",
                "seed",
                "service_pps",
                "admission_limit",
            ],
        ),
        "grid": (["grid"], ["grid", "suite", "vvd", "horizon", "seed"]),
    }

    @pytest.mark.parametrize("kind", sorted(CASES))
    def test_defaults_match_parser(self, kind):
        argv, fields = self.CASES[kind]
        args = build_parser().parse_args(argv)
        spec = _spec_instance(JOB_KINDS[kind])
        for name in fields:
            cli_value = getattr(args, name)
            spec_value = getattr(spec, name)
            if isinstance(spec_value, tuple):
                cli_value = (
                    tuple(cli_value) if cli_value is not None else None
                )
            assert spec_value == cli_value, (
                f"{kind}.{name}: spec default {spec_value!r} drifted "
                f"from CLI default {cli_value!r}"
            )
