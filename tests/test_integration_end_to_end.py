"""End-to-end integration tests: the full pipeline on the tiny preset.

These tests tie every substrate together: environment -> packets ->
receiver -> estimators -> metrics, asserting the qualitative relations
the evaluation relies on.
"""

import numpy as np
import pytest

from repro.dataset import rotating_set_combinations
from repro.estimation import (
    GroundTruth,
    KalmanEstimator,
    PreambleGenie,
    PreviousEstimation,
    StandardDecoding,
)
from repro.experiments import EvaluationRunner


@pytest.fixture(scope="module")
def baseline_results(tiny_config, tiny_components, tiny_dataset):
    runner = EvaluationRunner(tiny_components, tiny_dataset)
    combos = rotating_set_combinations(tiny_config.dataset.num_sets)[:2]
    estimators_factory = lambda: [
        StandardDecoding(),
        GroundTruth(),
        PreambleGenie(),
        PreviousEstimation(1, 0.1),
        KalmanEstimator(tiny_config.kalman.default_order),
    ]
    return runner.run_combinations(combos, estimators_factory)


class TestEndToEnd:
    def test_all_combinations_ran(self, baseline_results):
        assert len(baseline_results) == 2

    def test_gt_cer_is_minimal(self, baseline_results):
        for result in baseline_results:
            gt = result.technique("Ground Truth").cer
            for name, technique in result.techniques.items():
                assert gt <= technique.cer + 1e-9, name

    def test_genie_close_to_gt(self, baseline_results):
        for result in baseline_results:
            gt = result.technique("Ground Truth").cer
            genie = result.technique("Preamble Based-Genie").cer
            assert genie == pytest.approx(gt, abs=0.05)

    def test_standard_has_most_chip_errors(self, baseline_results):
        # Uncorrected ISI: standard decoding shows the highest CER
        # (paper Fig. 13 ordering).
        for result in baseline_results:
            std = result.technique("Standard Decoding").cer
            for name, technique in result.techniques.items():
                if name == "Standard Decoding":
                    continue
                assert std >= technique.cer - 0.02, name

    def test_estimation_mse_ordering(self, baseline_results):
        # Fresh estimates beat stale ones on average.
        gt_mse = np.mean(
            [r.technique("Ground Truth").mse for r in baseline_results]
        )
        prev_mse = np.mean(
            [r.technique("100ms Previous").mse for r in baseline_results]
        )
        assert gt_mse < prev_mse

    def test_kalman_tracks_at_least_as_well_as_previous(
        self, baseline_results
    ):
        kalman_name = next(
            n
            for n in baseline_results[0].techniques
            if n.startswith("Kalman")
        )
        kalman = np.mean(
            [r.technique(kalman_name).mse for r in baseline_results]
        )
        previous = np.mean(
            [r.technique("100ms Previous").mse for r in baseline_results]
        )
        assert kalman <= previous * 2.0

    def test_outcomes_have_psdu_chip_counts(
        self, baseline_results, tiny_config
    ):
        outcome = baseline_results[0].technique("Ground Truth").outcomes[0]
        assert outcome.total_chips == tiny_config.phy.psdu_chip_count
