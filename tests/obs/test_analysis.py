"""Trace analysis: summary, timeline, critical path, Chrome export."""

from __future__ import annotations

import json

from repro.obs import analysis


def _span(name, span_id, parent, start, dur, **attrs) -> dict:
    return {
        "kind": "span",
        "name": name,
        "id": span_id,
        "parent": parent,
        "pid": 100,
        "start": start,
        "dur": dur,
        "attrs": attrs,
    }


def _journal() -> list[dict]:
    """A synthetic two-step run: root 10s, steps 6s + 3.8s, one event."""
    return [
        _span("campaign.run", "100:1", None, 1000.0, 10.0, jobs=1),
        _span("step.attempt", "100:2", "100:1", 1000.1, 6.0, step="gen"),
        _span("cache.generate", "100:3", "100:2", 1000.2, 5.5, key="k"),
        _span("step.attempt", "100:4", "100:1", 1006.2, 3.8, step="fit"),
        {
            "kind": "event",
            "name": "step.retry",
            "id": "100:5",
            "parent": "100:1",
            "pid": 100,
            "start": 1006.0,
            "attrs": {"step": "fit", "attempt": 1},
        },
    ]


class TestAccounting:
    def test_wall_accounting_over_root_children(self):
        accounting = analysis.wall_accounting(_journal())
        assert accounting["wall_s"] == 10.0
        assert accounting["accounted_s"] == 9.8
        assert abs(accounting["fraction"] - 0.98) < 1e-12
        assert [s["label"] for s in accounting["steps"]] == [
            "step.attempt[gen]",
            "step.attempt[fit]",
        ]

    def test_empty_journal_accounts_zero(self):
        accounting = analysis.wall_accounting([])
        assert accounting["fraction"] == 0.0
        assert accounting["steps"] == []

    def test_site_totals_aggregate_per_name(self):
        totals = analysis.site_totals(_journal())
        assert totals["step.attempt"]["count"] == 2
        assert totals["step.attempt"]["total_s"] == 9.8
        assert totals["step.attempt"]["max_s"] == 6.0
        assert totals["cache.generate"]["mean_s"] == 5.5


class TestRenderers:
    def test_summary_reports_wall_and_sites(self):
        text = analysis.render_summary(_journal())
        assert "Trace summary — 4 span(s), 1 event(s)" in text
        assert "wall time: 10.000s" in text
        assert "(98.0%)" in text
        assert "step.attempt[gen]: 6.000s (60.0%)" in text
        assert "cache.generate: n=1" in text

    def test_timeline_orders_and_nests(self):
        lines = analysis.render_timeline(_journal()).splitlines()
        assert lines[0].startswith("Trace timeline")
        assert "campaign.run" in lines[1]
        # cache.generate nests two levels under the root.
        (generate_line,) = [l for l in lines if "cache.generate" in l]
        assert "    cache.generate[k]" in generate_line

    def test_critical_path_follows_dominant_child(self):
        path = analysis.critical_path(_journal())
        assert [record["name"] for record in path] == [
            "campaign.run",
            "step.attempt",
            "cache.generate",
        ]
        text = analysis.render_critical_path(_journal())
        assert "cache.generate[k]: 5.500s (55.0% of wall)" in text

    def test_empty_journal_renders_cleanly(self):
        assert "empty" in analysis.render_summary([])
        assert "empty" in analysis.render_timeline([])
        assert "empty" in analysis.render_critical_path([])


class TestChrome:
    def test_chrome_schema(self):
        document = analysis.to_chrome(_journal())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert len(events) == 5
        root = events[0]
        assert root["ph"] == "X"
        assert root["ts"] == 1000.0 * 1e6
        assert root["dur"] == 10.0 * 1e6
        assert root["pid"] == 100
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["s"] == "p"

    def test_write_chrome_is_valid_json(self, tmp_path):
        output = analysis.write_chrome(
            _journal(), tmp_path / "trace.chrome.json"
        )
        document = json.loads(output.read_text())
        assert len(document["traceEvents"]) == 5


class TestDiscovery:
    def test_load_journal_missing_file_is_empty(self, tmp_path):
        assert analysis.load_journal(tmp_path / "absent.jsonl") == []

    def test_load_journal_warns_on_corruption(self, tmp_path, capsys):
        journal = tmp_path / "trace.jsonl"
        journal.write_text('{"broken\n')
        assert analysis.load_journal(journal) == []
        assert (
            "warning: skipped 1 corrupt trace line(s)"
            in capsys.readouterr().out
        )

    def test_discover_journal_picks_newest(self, tmp_path):
        import os

        old = tmp_path / "campaigns" / "run-a" / "trace"
        new = tmp_path / "campaigns" / "run-b" / "trace"
        for directory in (old, new):
            directory.mkdir(parents=True)
            (directory / "trace.jsonl").write_text("")
        os.utime(old / "trace.jsonl", (1.0, 1.0))
        os.utime(new / "trace.jsonl", (2.0, 2.0))
        assert analysis.discover_journal(tmp_path) == new / "trace.jsonl"

    def test_discover_journal_empty_root(self, tmp_path):
        assert analysis.discover_journal(tmp_path) is None
