"""Metrics registry: instruments, exporters, pull-model absorption."""

from __future__ import annotations

import json

import pytest

from repro.experiments.metrics import LatencyReservoir
from repro.obs import metrics


class TestInstruments:
    def test_counter_accumulates_and_rejects_decrease(self):
        registry = metrics.MetricsRegistry()
        counter = registry.counter("repro_cache_hits")
        counter.inc()
        counter.inc(4)
        assert registry.counter("repro_cache_hits").value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_replaces_value(self):
        registry = metrics.MetricsRegistry()
        registry.gauge("repro_service_flush_seconds").set(1.5)
        registry.gauge("repro_service_flush_seconds").set(2.5)
        snapshot = registry.snapshot()
        assert snapshot["repro_service_flush_seconds"] == {
            "type": "gauge",
            "value": 2.5,
        }

    def test_histogram_observes_through_reservoir(self):
        registry = metrics.MetricsRegistry()
        histogram = registry.histogram("repro_latency_seconds")
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        payload = histogram.as_dict()
        assert payload["type"] == "histogram"
        assert payload["count"] == 3

    def test_name_cannot_change_type(self):
        registry = metrics.MetricsRegistry()
        registry.counter("repro_requests")
        with pytest.raises(TypeError):
            registry.gauge("repro_requests")
        with pytest.raises(TypeError):
            registry.histogram("repro_requests")


class TestExporters:
    def _populated(self) -> metrics.MetricsRegistry:
        registry = metrics.MetricsRegistry()
        registry.counter("repro_cache_hits").inc(7)
        registry.gauge("repro_flush_seconds").set(0.25)
        histogram = registry.histogram("repro_latency_seconds")
        histogram.observe(0.004)
        return registry

    def test_json_snapshot_round_trips(self):
        data = json.loads(self._populated().to_json())
        assert data["repro_cache_hits"] == {"type": "counter", "value": 7}
        assert data["repro_latency_seconds"]["count"] == 1

    def test_prometheus_text_exposition(self):
        text = self._populated().to_prometheus()
        assert "# TYPE repro_cache_hits counter" in text
        assert "repro_cache_hits 7" in text
        assert "# TYPE repro_flush_seconds gauge" in text
        assert "repro_flush_seconds 0.25" in text
        assert "# TYPE repro_latency_seconds summary" in text
        assert 'repro_latency_seconds{quantile="0.5"} 0.004' in text
        assert "repro_latency_seconds_count 1" in text
        assert text.endswith("\n")

    def test_write_emits_both_files(self, tmp_path):
        json_path, prom_path = self._populated().write(tmp_path)
        assert json_path.name == "metrics.json"
        assert prom_path.name == "metrics.prom"
        assert json.loads(json_path.read_text())
        assert "# TYPE" in prom_path.read_text()


class _CacheStats:
    hits = 3
    misses = 1
    sets_loaded = 9
    sets_generated = 2
    sets_corrupt = 0


class _ModelStats:
    hits = 2
    misses = 0
    models_trained = 0
    models_loaded = 2


class _Result:
    executed = ["a", "b"]
    skipped = ["c"]
    quarantined: list = []
    retried = 1


class TestCollect:
    def test_absorbs_every_stats_object(self):
        reservoir = LatencyReservoir(seed="test")
        reservoir.add(0.005)

        class _ServiceStats:
            requests = 4
            predictions = 4
            batches = 1
            shed_requests = 0
            flush_seconds = 0.125
            latency = reservoir

        registry = metrics.collect(
            cache_stats=_CacheStats(),
            model_stats=_ModelStats(),
            service_stats=_ServiceStats(),
            campaign_result=_Result(),
        )
        snapshot = registry.snapshot()
        assert snapshot["repro_cache_hits"]["value"] == 3
        assert snapshot["repro_cache_sets_generated"]["value"] == 2
        assert snapshot["repro_model_hits"]["value"] == 2
        assert snapshot["repro_service_requests"]["value"] == 4
        assert snapshot["repro_service_flush_seconds"]["value"] == 0.125
        assert snapshot["repro_service_latency_seconds"]["count"] == 1
        assert snapshot["repro_campaign_steps_executed"]["value"] == 2
        assert snapshot["repro_campaign_steps_resumed"]["value"] == 1
        assert snapshot["repro_campaign_retries"]["value"] == 1

    def test_partial_absorption_skips_absent_sources(self):
        registry = metrics.collect(campaign_result=_Result())
        snapshot = registry.snapshot()
        assert "repro_cache_hits" not in snapshot
        assert snapshot["repro_campaign_steps_quarantined"]["value"] == 0

    def test_adopts_service_reservoir_without_copy(self):
        reservoir = LatencyReservoir(seed="svc")
        reservoir.add(0.001)

        class _ServiceStats:
            requests = 1
            predictions = 1
            batches = 1
            shed_requests = 0
            flush_seconds = 0.001
            latency = reservoir

        registry = metrics.collect(service_stats=_ServiceStats())
        histogram = registry.histogram("repro_service_latency_seconds")
        assert histogram.reservoir is reservoir
