"""Logger contract: verbatim messages, level floors, env inheritance."""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError
from repro.obs import log


class TestDefaults:
    def test_info_prints_verbatim_to_stdout(self, capsys):
        log.info("cache: 3 set(s) generated")
        captured = capsys.readouterr()
        # No prefixes, no timestamps — CI greps exact sentinel strings.
        assert captured.out == "cache: 3 set(s) generated\n"
        assert captured.err == ""

    def test_debug_hidden_by_default(self, capsys):
        log.debug("noise")
        assert capsys.readouterr().out == ""

    def test_warning_goes_to_stdout(self, capsys):
        log.warning("warning: cache corruption detected in x")
        captured = capsys.readouterr()
        assert "cache corruption detected" in captured.out
        assert captured.err == ""

    def test_error_goes_to_stderr(self, capsys):
        log.error("error: boom")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "error: boom\n"

    def test_default_level_is_info(self):
        assert log.level_name() == "INFO"


class TestLevels:
    def test_quiet_suppresses_info_keeps_warning(self, capsys):
        log.set_level("WARNING")
        log.info("summary line")
        log.warning("warning: something recoverable")
        captured = capsys.readouterr()
        assert "summary line" not in captured.out
        assert "warning: something recoverable" in captured.out

    def test_debug_level_reveals_debug(self, capsys):
        log.set_level("DEBUG")
        log.debug("diagnostic")
        assert capsys.readouterr().out == "diagnostic\n"

    def test_set_level_exports_to_environment(self):
        log.set_level("warning")
        assert os.environ[log.ENV_VAR] == "WARNING"
        log.reset()
        assert log.ENV_VAR not in os.environ

    def test_environment_consulted_lazily(self, capsys, monkeypatch):
        monkeypatch.setenv(log.ENV_VAR, "ERROR")
        log.info("hidden")
        log.warning("also hidden")
        assert capsys.readouterr().out == ""

    def test_unknown_env_value_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(log.ENV_VAR, "CHATTY")
        assert log.level_name() == "INFO"

    def test_unknown_set_level_raises_typed(self):
        with pytest.raises(ConfigurationError):
            log.set_level("CHATTY")
