"""Tracer contract: zero-cost disarmed path, crash-tolerant shards.

Covers the arming discipline (lazy env resolution, the shared no-op
span), the journal format (ids, parents, error capture), and the
robustness guarantees: corrupt lines skipped with a counted warning,
shard merges stable under a worker killed mid-write (the
``test_locking.py`` fork + ``os._exit`` idiom), and idempotent
re-merges.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.obs import trace


def _emit(directory) -> list[dict]:
    """Arm, write a tiny nested journal, merge, and return the records."""
    trace.arm(directory)
    with trace.span("outer", step="a"):
        with trace.span("inner", key="k"):
            pass
        trace.event("ping", site="outer")
    journal = trace.merge_shards(directory)
    records, skipped = trace.read_records(journal)
    assert skipped == 0
    return records


class TestDisarmed:
    def test_span_returns_shared_noop(self):
        first = trace.span("anything", key=1)
        second = trace.span("else")
        assert first is trace.NULL_SPAN
        assert second is trace.NULL_SPAN

    def test_noop_span_accepts_set_and_context(self):
        with trace.span("x") as span:
            assert span.set("k", "v") is span

    def test_event_is_free(self, tmp_path):
        trace.event("nothing", site="here")
        assert list(tmp_path.iterdir()) == []

    def test_exceptions_propagate_through_noop(self):
        with pytest.raises(ValueError):
            with trace.span("x"):
                raise ValueError("boom")

    def test_env_var_arms_lazily(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace.ENV_VAR, str(tmp_path))
        trace.reset()
        with trace.span("lazy"):
            pass
        journal = trace.merge_shards(tmp_path)
        (record,) = trace.read_records(journal)[0]
        assert record["name"] == "lazy"


class TestArmed:
    def test_nesting_links_parents(self, tmp_path):
        records = _emit(tmp_path)
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["ping"]["parent"] == by_name["outer"]["id"]
        assert by_name["ping"]["kind"] == "event"
        assert "dur" not in by_name["ping"]

    def test_span_records_carry_clocks_and_attrs(self, tmp_path):
        records = _emit(tmp_path)
        by_name = {r["name"]: r for r in records}
        outer = by_name["outer"]
        assert outer["kind"] == "span"
        assert outer["attrs"] == {"step": "a"}
        assert outer["start"] > 0.0
        assert outer["dur"] >= by_name["inner"]["dur"] >= 0.0
        assert outer["pid"] == os.getpid()

    def test_error_class_captured_and_reraised(self, tmp_path):
        trace.arm(tmp_path)
        with pytest.raises(KeyError):
            with trace.span("failing", step="s"):
                raise KeyError("missing")
        journal = trace.merge_shards(tmp_path)
        (record,) = trace.read_records(journal)[0]
        assert record["attrs"]["error"] == "KeyError"

    def test_mid_span_set_lands_in_attrs(self, tmp_path):
        trace.arm(tmp_path)
        with trace.span("work") as span:
            span.set("items", 3)
        journal = trace.merge_shards(tmp_path)
        (record,) = trace.read_records(journal)[0]
        assert record["attrs"]["items"] == 3

    def test_second_run_after_merge_keeps_unique_ids(self, tmp_path):
        trace.arm(tmp_path)
        with trace.span("first"):
            pass
        trace.merge_shards(tmp_path)
        # The merge closed our shard; the next span must re-open a
        # fresh one and keep counting ids rather than reusing them.
        with trace.span("second"):
            pass
        journal = trace.merge_shards(tmp_path)
        records, _ = trace.read_records(journal)
        assert {r["name"] for r in records} == {"first", "second"}
        assert len({r["id"] for r in records}) == 2


class TestRobustness:
    def test_read_records_missing_file(self, tmp_path):
        assert trace.read_records(tmp_path / "absent.jsonl") == ([], 0)

    def test_corrupt_lines_skipped_with_counted_warning(
        self, tmp_path, capsys
    ):
        shard = tmp_path / f"{trace.SHARD_PREFIX}1.jsonl"
        good = {
            "kind": "span",
            "name": "ok",
            "id": "1:1",
            "parent": None,
            "pid": 1,
            "start": 1.0,
            "dur": 0.5,
            "attrs": {},
        }
        shard.write_text(
            json.dumps(good)
            + "\n"
            + '{"kind": "span", "name": "torn'
            + "\n"
            + '"not an object"'
            + "\n"
        )
        journal = trace.merge_shards(tmp_path)
        records, _ = trace.read_records(journal)
        assert [r["name"] for r in records] == ["ok"]
        out = capsys.readouterr().out
        assert "warning: skipped 2 corrupt trace line(s)" in out
        assert shard.name in out

    def test_merge_is_idempotent(self, tmp_path):
        _emit(tmp_path)
        journal = tmp_path / trace.JOURNAL_NAME
        first = journal.read_bytes()
        trace.merge_shards(tmp_path)
        assert journal.read_bytes() == first

    def test_merge_removes_shards(self, tmp_path):
        _emit(tmp_path)
        assert list(tmp_path.glob(f"{trace.SHARD_PREFIX}*.jsonl")) == []


def _forked_worker(directory: str) -> None:
    """Emit one span from a forked child inside the parent's span."""
    with trace.span("child.work", unit=1):
        pass
    os._exit(0)


def _killed_mid_write(directory: str) -> None:
    """Emit one good record, then die mid-``os.write`` of the next."""
    trace.event("survivor", site="child")
    tracer = trace.active_tracer()
    os.write(tracer._fd, b'{"kind": "span", "name": "torn...')
    os._exit(1)


class TestForkedWorkers:
    def test_child_shard_merges_with_parent_linkage(self, tmp_path):
        trace.arm(tmp_path)
        with trace.span("campaign.run") as root:
            proc = multiprocessing.get_context("fork").Process(
                target=_forked_worker, args=(str(tmp_path),)
            )
            proc.start()
            proc.join()
        assert proc.exitcode == 0
        journal = trace.merge_shards(tmp_path)
        records, skipped = trace.read_records(journal)
        assert skipped == 0
        by_name = {r["name"]: r for r in records}
        child = by_name["child.work"]
        # The fork inherited the open span stack, so the worker's span
        # parents to the campaign span across the process boundary.
        assert child["parent"] == root.span_id
        assert child["pid"] != by_name["campaign.run"]["pid"]

    def test_killed_worker_torn_line_is_skipped(self, tmp_path, capsys):
        trace.arm(tmp_path)
        with trace.span("campaign.run"):
            proc = multiprocessing.get_context("fork").Process(
                target=_killed_mid_write, args=(str(tmp_path),)
            )
            proc.start()
            proc.join()
        assert proc.exitcode == 1
        journal = trace.merge_shards(tmp_path)
        records, skipped = trace.read_records(journal)
        assert skipped == 0  # the merge already dropped the torn line
        names = {r["name"] for r in records}
        assert "survivor" in names
        assert "campaign.run" in names
        assert not any(n.startswith("torn") for n in names)
        assert (
            "warning: skipped 1 corrupt trace line(s)"
            in capsys.readouterr().out
        )
