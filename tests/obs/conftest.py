"""Shared telemetry-test hygiene: always leave the process disarmed."""

from __future__ import annotations

import pytest

from repro.obs import log, trace


@pytest.fixture(autouse=True)
def _clean_telemetry_state():
    """Disarm tracing and reset log levels around every test.

    Both modules cache their arming decision in module state *and*
    export it through the environment; a test that armed either must
    never leak into the next one (the same discipline as
    ``faults.deactivate()`` in the chaos tests).
    """
    trace.disarm()
    trace.reset()
    log.reset()
    yield
    trace.disarm()
    trace.reset()
    log.reset()
