"""Behavioural tests of the training loop on controlled problems."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    MeanSquaredError,
    Nadam,
    ReLU,
    SGD,
    Sequential,
)


class TestOptimizersOnQuadratic:
    """Minimize ||Wx - y||^2 through a single Dense layer."""

    def _loss_after(self, optimizer, steps=200, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(64, 5)).astype(np.float64)
        true_w = rng.normal(size=(5, 2))
        y = x @ true_w
        model = Sequential([Dense(2)], seed=1, dtype=np.float64)
        model.build((5,))
        loss = MeanSquaredError()
        for _ in range(steps):
            model.train_batch(x, y, optimizer, loss)
        return loss.value(model.forward(x), y)

    def test_nadam_beats_plain_sgd_on_budget(self):
        nadam = self._loss_after(Nadam(1e-2), steps=100)
        sgd = self._loss_after(SGD(1e-3), steps=100)
        assert nadam < sgd

    def test_adam_and_nadam_both_converge(self):
        # 200 steps at lr 1e-2 reach ~1e-2 on this conditioning; the
        # point is convergence, not the constant.
        assert self._loss_after(Adam(1e-2), steps=400) < 1e-2
        assert self._loss_after(Nadam(1e-2), steps=400) < 1e-2

    def test_momentum_accelerates_sgd(self):
        plain = self._loss_after(SGD(1e-3), steps=150)
        momentum = self._loss_after(SGD(1e-3, momentum=0.9), steps=150)
        assert momentum <= plain


class TestOverfitSmallData:
    def test_network_memorizes_six_points(self):
        # Sanity: enough capacity + steps -> near-zero train loss.
        rng = np.random.default_rng(3)
        x = rng.normal(size=(6, 4)).astype(np.float64)
        y = rng.normal(size=(6, 3)).astype(np.float64)
        model = Sequential(
            [Dense(32), ReLU(), Dense(3)], seed=2, dtype=np.float64
        )
        history = model.fit(
            x, y, Nadam(5e-3), epochs=300, batch_size=6
        )
        assert history.train_loss[-1] < 1e-4

    def test_validation_detects_overfit(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(12, 6)).astype(np.float64)
        y = rng.normal(size=(12, 2)).astype(np.float64)  # pure noise
        x_val = rng.normal(size=(12, 6)).astype(np.float64)
        y_val = rng.normal(size=(12, 2)).astype(np.float64)
        model = Sequential(
            [Dense(64), ReLU(), Dense(2)], seed=5, dtype=np.float64
        )
        history = model.fit(
            x,
            y,
            Nadam(5e-3),
            epochs=200,
            batch_size=12,
            validation_data=(x_val, y_val),
        )
        # Training memorizes noise; validation cannot follow.
        assert history.train_loss[-1] < 0.1
        assert history.val_loss[-1] > history.train_loss[-1]
        # Best-epoch selection picked an earlier epoch than the last.
        assert history.best_epoch <= 199


class TestGradientAccumulationSemantics:
    def test_optimizer_clears_gradients(self):
        rng = np.random.default_rng(6)
        model = Sequential([Dense(2)], seed=0, dtype=np.float64)
        model.build((3,))
        x = rng.normal(size=(4, 3))
        y = rng.normal(size=(4, 2))
        loss = MeanSquaredError()
        optimizer = SGD(1e-2)
        model.train_batch(x, y, optimizer, loss)
        for parameter in model.parameters():
            assert np.all(parameter.grad == 0.0)

    def test_backward_accumulates_until_step(self):
        rng = np.random.default_rng(7)
        model = Sequential([Dense(2)], seed=0, dtype=np.float64)
        model.build((3,))
        x = rng.normal(size=(4, 3))
        y = rng.normal(size=(4, 2))
        loss = MeanSquaredError()
        prediction = model.forward(x, training=True)
        model.backward(loss.gradient(prediction, y))
        first = model.parameters()[0].grad.copy()
        prediction = model.forward(x, training=True)
        model.backward(loss.gradient(prediction, y))
        assert np.allclose(model.parameters()[0].grad, 2 * first)
