"""Equivalence of the im2col Conv2D path against the reference loop.

Mirrors the ``tests/test_batch_equivalence.py`` contract for the PHY
engine: the im2col formulation must be a pure accelerator, agreeing
with the per-kernel-position reference path to 1e-10 (float64) on the
forward pass, the input gradient and every parameter gradient, across
randomized shapes, strides and channel counts.  A timing sanity check
asserts the im2col path actually wins on VVD-sized inputs.
"""

import time

import numpy as np
import pytest

from repro.nn import CONV_IMPLEMENTATIONS, Conv2D
from repro.errors import ShapeError

TOL = 1e-10


def _build_pair(
    input_shape, filters, kernel_size, stride, seed
) -> tuple[Conv2D, Conv2D]:
    """Two identically initialized layers, one per implementation."""
    layers = []
    for impl in ("im2col", "reference"):
        rng = np.random.default_rng(seed)
        layer = Conv2D(
            filters, kernel_size, stride=stride, conv_impl=impl
        )
        layer.build(input_shape, rng, np.float64)
        layers.append(layer)
    return layers[0], layers[1]


def _assert_equivalent(
    batch, input_shape, filters, kernel_size, stride, seed
):
    im2col, reference = _build_pair(
        input_shape, filters, kernel_size, stride, seed
    )
    rng = np.random.default_rng(seed + 1)
    x = rng.normal(size=(batch, *input_shape))
    out_a = im2col.forward(x, training=True)
    out_b = reference.forward(x, training=True)
    assert out_a.shape == out_b.shape
    assert np.allclose(out_a, out_b, atol=TOL)

    grad = rng.normal(size=out_a.shape)
    dx_a = im2col.backward(grad)
    dx_b = reference.backward(grad)
    assert np.allclose(dx_a, dx_b, atol=TOL)
    assert np.allclose(
        im2col.weight.grad, reference.weight.grad, atol=TOL
    )
    assert np.allclose(im2col.bias.grad, reference.bias.grad, atol=TOL)


class TestForwardBackwardEquivalence:
    @pytest.mark.parametrize("kernel_size", [1, 2, 3, 5, (2, 4), (4, 2), (5, 1)])
    def test_kernel_shapes(self, kernel_size):
        _assert_equivalent(3, (9, 11, 3), 4, kernel_size, 1, seed=7)

    @pytest.mark.parametrize("stride", [1, 2, 3])
    @pytest.mark.parametrize("kernel_size", [3, (2, 3)])
    def test_strides(self, stride, kernel_size):
        _assert_equivalent(2, (10, 13, 2), 5, kernel_size, stride, seed=3)

    @pytest.mark.parametrize("channels", [1, 2, 7, 16])
    def test_channel_counts(self, channels):
        _assert_equivalent(2, (8, 9, channels), 6, 3, 1, seed=11)

    def test_randomized_sweep(self):
        rng = np.random.default_rng(2024)
        for trial in range(20):
            kh = int(rng.integers(1, 5))
            kw = int(rng.integers(1, 5))
            stride = int(rng.integers(1, 4))
            h = int(rng.integers(kh, kh + 9))
            w = int(rng.integers(kw, kw + 9))
            c = int(rng.integers(1, 5))
            filters = int(rng.integers(1, 7))
            batch = int(rng.integers(1, 5))
            _assert_equivalent(
                batch, (h, w, c), filters, (kh, kw), stride, seed=trial
            )

    def test_batch_size_one(self):
        _assert_equivalent(1, (7, 7, 2), 3, 3, 1, seed=5)

    def test_params_only_backward_matches(self):
        im2col, reference = _build_pair((9, 9, 2), 4, 3, 1, seed=9)
        rng = np.random.default_rng(10)
        x = rng.normal(size=(3, 9, 9, 2))
        grad = rng.normal(size=(3, 7, 7, 4))
        im2col.forward(x, training=True)
        reference.forward(x, training=True)
        assert im2col.backward_params_only(grad) is None
        assert reference.backward_params_only(grad) is None
        assert np.allclose(
            im2col.weight.grad, reference.weight.grad, atol=TOL
        )
        assert np.allclose(
            im2col.bias.grad, reference.bias.grad, atol=TOL
        )


class TestDtypePolicy:
    @pytest.mark.parametrize("impl", CONV_IMPLEMENTATIONS)
    def test_float64_input_through_float32_layer_stays_float32(
        self, impl
    ):
        """Both paths emit activations in the parameter dtype — a
        float64 input must not widen a float32-built stack."""
        rng = np.random.default_rng(0)
        layer = Conv2D(3, 3, conv_impl=impl)
        layer.build((6, 7, 2), rng, np.float32)
        out = layer.forward(rng.normal(size=(2, 6, 7, 2)))
        assert out.dtype == np.float32


class TestImplementationSelection:
    def test_implementations_registered(self):
        assert set(CONV_IMPLEMENTATIONS) == {"im2col", "reference"}

    def test_default_is_im2col(self):
        assert Conv2D(4).conv_impl == "im2col"

    def test_unknown_impl_rejected(self):
        with pytest.raises(ShapeError):
            Conv2D(4, conv_impl="winograd")

    def test_bad_stride_rejected(self):
        with pytest.raises(ShapeError):
            Conv2D(4, 3, stride=0)


class TestZeroSizeGuards:
    """Satellite fix: zero-size spatial dims raise ShapeError."""

    @pytest.mark.parametrize("shape", [(0, 5, 1), (5, 0, 1), (5, 5, 0)])
    def test_build_rejects_zero_dims(self, shape):
        rng = np.random.default_rng(0)
        with pytest.raises(ShapeError):
            Conv2D(2, 1).build(shape, rng, np.float64)

    @pytest.mark.parametrize("impl", CONV_IMPLEMENTATIONS)
    @pytest.mark.parametrize("shape", [(2, 0, 5, 1), (2, 5, 0, 1)])
    def test_forward_rejects_zero_dims(self, impl, shape):
        rng = np.random.default_rng(0)
        layer = Conv2D(2, 1, conv_impl=impl)
        layer.build((5, 5, 1), rng, np.float64)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros(shape))


class TestTimingSanity:
    def test_im2col_wins_on_vvd_sized_inputs(self):
        """The im2col path must beat the reference loop on the shape the
        VVD CNN actually trains on (50x90 depth images, first conv).

        Wall-clock comparisons are noisy on shared machines, so the bar
        is deliberately conservative (best-of-5 strictly faster); the
        ~3-4x first-layer margin is tracked by
        ``benchmarks/test_training_throughput.py``.
        """
        rng = np.random.default_rng(42)
        x = rng.normal(size=(32, 50, 90, 1)).astype(np.float32)

        def best_step_time(impl):
            layer_rng = np.random.default_rng(1)
            layer = Conv2D(16, 3, conv_impl=impl)
            layer.build((50, 90, 1), layer_rng, np.float32)
            out = layer.forward(x, training=True)
            grad = np.ones_like(out)
            layer.backward(grad)  # warm-up
            best = float("inf")
            for _ in range(5):
                start = time.perf_counter()
                layer.forward(x, training=True)
                layer.backward(grad)
                best = min(best, time.perf_counter() - start)
            return best

        reference = best_step_time("reference")
        im2col = best_step_time("im2col")
        assert im2col < reference, (
            f"im2col {im2col * 1e3:.1f} ms not faster than reference "
            f"{reference * 1e3:.1f} ms on VVD-sized input"
        )
