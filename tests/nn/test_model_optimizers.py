"""Tests for optimizers, losses, and the Sequential training loop."""

import numpy as np
import pytest

from repro.errors import NotFittedError, ShapeError
from repro.nn import (
    SGD,
    Adam,
    Conv2D,
    Dense,
    Flatten,
    MeanSquaredError,
    Nadam,
    ReLU,
    Sequential,
)


def _linear_data(rng, n=64, d=6, k=3):
    x = rng.normal(size=(n, d))
    w = rng.normal(size=(d, k))
    return x.astype(np.float64), (x @ w).astype(np.float64)


class TestLoss:
    def test_value(self):
        loss = MeanSquaredError()
        assert loss.value(np.array([[2.0]]), np.array([[0.0]])) == 4.0

    def test_gradient_matches_numeric(self, rng):
        loss = MeanSquaredError()
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        grad = loss.gradient(pred, target)
        eps = 1e-6
        for i in range(4):
            for j in range(3):
                pred[i, j] += eps
                plus = loss.value(pred, target)
                pred[i, j] -= 2 * eps
                minus = loss.value(pred, target)
                pred[i, j] += eps
                assert grad[i, j] == pytest.approx(
                    (plus - minus) / (2 * eps), abs=1e-6
                )

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            MeanSquaredError().value(np.ones((2, 2)), np.ones((2, 3)))


@pytest.mark.parametrize(
    "optimizer_factory",
    [
        lambda: SGD(1e-2),
        lambda: SGD(1e-2, momentum=0.9),
        lambda: Adam(1e-2),
        lambda: Nadam(1e-2),
    ],
    ids=["sgd", "sgd-momentum", "adam", "nadam"],
)
def test_optimizers_reduce_loss(optimizer_factory, rng):
    x, y = _linear_data(rng)
    model = Sequential([Dense(16), ReLU(), Dense(3)], seed=0, dtype=np.float64)
    history = model.fit(
        x, y, optimizer_factory(), epochs=60, batch_size=16
    )
    assert history.train_loss[-1] < history.train_loss[0] * 0.2


class TestSequential:
    def test_lazy_build_on_forward(self, rng):
        model = Sequential([Dense(4)], seed=0)
        out = model.forward(rng.normal(size=(2, 3)).astype(np.float32))
        assert out.shape == (2, 4)
        assert model.input_shape == (3,)

    def test_predict_before_build_raises(self, rng):
        with pytest.raises(NotFittedError):
            Sequential([Dense(2)]).predict(rng.normal(size=(2, 3)))

    def test_best_val_weights_restored(self, rng):
        x, y = _linear_data(rng, n=32)
        model = Sequential([Dense(3)], seed=0, dtype=np.float64)
        history = model.fit(
            x,
            y,
            Nadam(5e-2),
            epochs=25,
            validation_data=(x, y),
            restore_best_weights=True,
        )
        final_loss = model.evaluate(x, y)
        assert final_loss == pytest.approx(history.best_val_loss, rel=1e-6)

    def test_lr_decay_schedule(self, rng):
        x, y = _linear_data(rng, n=16)
        model = Sequential([Dense(3)], seed=0, dtype=np.float64)
        optimizer = Nadam(1e-3)
        history = model.fit(
            x, y, optimizer, epochs=3, lr_decay_per_epoch=0.004
        )
        expected = [1e-3, 1e-3 * 0.996, 1e-3 * 0.996**2]
        assert np.allclose(history.learning_rates, expected)

    def test_save_load_round_trip(self, rng, tmp_path):
        x = rng.normal(size=(4, 6, 8, 1)).astype(np.float32)
        model = Sequential(
            [Conv2D(4, 3), ReLU(), Flatten(), Dense(5)], seed=3
        )
        model.build((6, 8, 1))
        reference = model.predict(x)
        path = str(tmp_path / "weights.npz")
        model.save(path)
        clone = Sequential(
            [Conv2D(4, 3), ReLU(), Flatten(), Dense(5)], seed=99
        )
        clone.load(path)
        assert np.allclose(clone.predict(x), reference)

    def test_set_weights_shape_check(self, rng):
        model = Sequential([Dense(4)], seed=0)
        model.build((3,))
        with pytest.raises(ShapeError):
            model.set_weights([np.zeros((2, 2)), np.zeros(4)])

    def test_deterministic_training(self, rng):
        x, y = _linear_data(rng, n=32)

        def train():
            model = Sequential([Dense(8), ReLU(), Dense(3)], seed=11,
                               dtype=np.float64)
            model.fit(x, y, Nadam(1e-3), epochs=5, shuffle_seed=4)
            return model.predict(x)

        assert np.allclose(train(), train())

    def test_summary_counts_parameters(self):
        model = Sequential([Dense(4), ReLU(), Dense(2)], seed=0)
        model.build((3,))
        text = model.summary()
        # (3*4 + 4) + (4*2 + 2) = 26
        assert "26" in text

    def test_fit_validates_lengths(self, rng):
        model = Sequential([Dense(2)], seed=0)
        with pytest.raises(ShapeError):
            model.fit(
                rng.normal(size=(4, 3)),
                rng.normal(size=(5, 2)),
                Nadam(1e-3),
                epochs=1,
            )

    def test_cnn_learns_simple_pattern(self, rng):
        # Regression task: output = mean of image quadrant.
        x = rng.normal(size=(128, 8, 8, 1)).astype(np.float32)
        y = x[:, :4, :4, 0].mean(axis=(1, 2), keepdims=True).reshape(-1, 1)
        model = Sequential(
            [Conv2D(4, 3), ReLU(), Flatten(), Dense(1)], seed=1
        )
        history = model.fit(
            x, y.astype(np.float32), Nadam(2e-3), epochs=30, batch_size=32
        )
        assert history.train_loss[-1] < history.train_loss[0] * 0.1
