"""Pin the MSE reduction convention (satellite fix of the training PR).

``MeanSquaredError.gradient`` divides by ``prediction.size`` — the total
element count ``B * D`` — because :meth:`value` is the mean over every
element.  These tests pin that convention so the paper's Nadam learning
rates keep their meaning: switching to a per-sample (sum-over-outputs)
MSE would silently scale every gradient, and thus the effective learning
rate, by the output width ``D``.
"""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import MeanSquaredError


class TestConvention:
    def test_value_is_per_element_mean(self, rng):
        prediction = rng.normal(size=(8, 22))
        target = rng.normal(size=(8, 22))
        value = MeanSquaredError().value(prediction, target)
        assert value == pytest.approx(
            float(np.mean((prediction - target) ** 2))
        )

    def test_gradient_divides_by_total_element_count(self, rng):
        prediction = rng.normal(size=(8, 22))
        target = rng.normal(size=(8, 22))
        grad = MeanSquaredError().gradient(prediction, target)
        assert np.allclose(
            grad, 2.0 * (prediction - target) / (8 * 22)
        )

    def test_gradient_is_exact_derivative_of_value(self, rng):
        """The pinned pair: gradient() must differentiate value()."""
        loss = MeanSquaredError()
        prediction = rng.normal(size=(3, 5))
        target = rng.normal(size=(3, 5))
        analytic = loss.gradient(prediction, target)
        eps = 1e-6
        flat = prediction.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = loss.value(prediction, target)
            flat[i] = original - eps
            minus = loss.value(prediction, target)
            flat[i] = original
            assert analytic.reshape(-1)[i] == pytest.approx(
                (plus - minus) / (2 * eps), abs=1e-6
            )

    def test_equals_mean_of_per_sample_means(self, rng):
        """Keras-style reduction (mean over outputs, then batch) agrees
        for equal-sized samples — LR semantics transfer unchanged."""
        prediction = rng.normal(size=(6, 11))
        target = rng.normal(size=(6, 11))
        per_sample = ((prediction - target) ** 2).mean(axis=1)
        assert MeanSquaredError().value(
            prediction, target
        ) == pytest.approx(float(per_sample.mean()))

    def test_per_sample_convention_would_rescale_gradient(self, rng):
        """Documents *why* the convention matters: a sum-over-outputs
        per-sample MSE scales the gradient by the output width D."""
        prediction = rng.normal(size=(4, 22))
        target = rng.normal(size=(4, 22))
        grad = MeanSquaredError().gradient(prediction, target)
        per_sample_grad = 2.0 * (prediction - target) / 4  # mean over B only
        assert np.allclose(per_sample_grad, grad * 22)


class TestValidation:
    def test_empty_arrays_rejected(self):
        with pytest.raises(ShapeError):
            MeanSquaredError().value(np.empty((0, 3)), np.empty((0, 3)))

    def test_empty_gradient_rejected(self):
        with pytest.raises(ShapeError):
            MeanSquaredError().gradient(
                np.empty((0, 3)), np.empty((0, 3))
            )
