"""Numerical-vs-analytic gradient checks through the im2col conv path.

Extends the ``tests/nn/test_layers.py`` gradcheck matrix: every layer
type is checked with the stack's convolutions on the new im2col
implementation, including non-square kernels, strided convolutions and
batch-size-1 edge cases, plus a whole-model check through the VVD
layer sequence (conv -> relu -> pool -> flatten -> dense).
"""

import numpy as np
import pytest

from repro.nn import (
    AveragePooling2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    MaxPooling2D,
    MeanSquaredError,
    ReLU,
    Sequential,
    check_layer_gradients,
    numerical_gradient,
)

_TOLERANCE = 1e-6


@pytest.mark.parametrize(
    "layer_factory,input_shape",
    [
        (lambda: Conv2D(4, 3, conv_impl="im2col"), (2, 6, 7, 3)),
        (lambda: Conv2D(2, 1, conv_impl="im2col"), (2, 4, 4, 2)),
        (lambda: Conv2D(3, 5, conv_impl="im2col"), (1, 8, 9, 1)),
        (lambda: Conv2D(3, (2, 4), conv_impl="im2col"), (2, 6, 8, 2)),
        (lambda: Conv2D(3, (4, 2), conv_impl="im2col"), (2, 8, 6, 2)),
        (lambda: Conv2D(2, (5, 1), conv_impl="im2col"), (2, 7, 4, 3)),
        (lambda: Conv2D(4, 3, stride=2, conv_impl="im2col"), (2, 9, 11, 2)),
        (lambda: Conv2D(2, (2, 3), stride=3, conv_impl="im2col"), (2, 10, 9, 1)),
        (lambda: Conv2D(4, 3, conv_impl="im2col"), (1, 6, 6, 2)),
        (lambda: Conv2D(3, (3, 2), stride=2, conv_impl="im2col"), (1, 7, 8, 1)),
        (lambda: Conv2D(3, (2, 4), conv_impl="reference"), (2, 6, 8, 2)),
        (lambda: Conv2D(4, 3, stride=2, conv_impl="reference"), (2, 9, 11, 2)),
        (lambda: Dense(5), (1, 7)),
        (lambda: ReLU(), (1, 9)),
        (lambda: Flatten(), (1, 3, 4, 2)),
        (lambda: AveragePooling2D(2), (1, 5, 6, 3)),
        (lambda: MaxPooling2D(2), (1, 4, 6, 2)),
        (lambda: BatchNorm2D(), (2, 4, 5, 2)),
    ],
    ids=[
        "im2col-3x3",
        "im2col-1x1",
        "im2col-5x5",
        "im2col-2x4",
        "im2col-4x2",
        "im2col-5x1",
        "im2col-3x3-stride2",
        "im2col-2x3-stride3",
        "im2col-3x3-batch1",
        "im2col-3x2-stride2-batch1",
        "reference-2x4",
        "reference-3x3-stride2",
        "dense-batch1",
        "relu-batch1",
        "flatten-batch1",
        "avgpool-batch1",
        "maxpool-batch1",
        "batchnorm",
    ],
)
def test_gradients_match_numerical(layer_factory, input_shape):
    errors = check_layer_gradients(layer_factory(), input_shape)
    assert max(errors.values()) < _TOLERANCE, errors


def test_full_stack_gradcheck_through_im2col():
    """End-to-end: d(loss)/d(weights) of a VVD-shaped stack matches the
    numerical gradient when every conv runs the im2col path."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 10, 12, 1))
    y = rng.normal(size=(2, 4))
    model = Sequential(
        [
            Conv2D(3, 3, conv_impl="im2col"),
            ReLU(),
            AveragePooling2D(2),
            Flatten(),
            Dense(4),
        ],
        seed=1,
        dtype=np.float64,
    )
    model.build((10, 12, 1))
    loss = MeanSquaredError()

    def objective() -> float:
        return loss.value(model.forward(x, training=True), y)

    prediction = model.forward(x, training=True)
    model.backward(loss.gradient(prediction, y), need_input_grad=False)
    for parameter in model.parameters():
        numeric = numerical_gradient(objective, parameter.value)
        error = float(np.max(np.abs(parameter.grad - numeric)))
        assert error < _TOLERANCE, (parameter.name, error)
        parameter.zero_grad()
