"""Gradient checks and behavioural tests for every layer."""

import numpy as np
import pytest

from repro.errors import NotFittedError, ShapeError
from repro.nn import (
    AveragePooling2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    MaxPooling2D,
    ReLU,
    check_layer_gradients,
)

_TOLERANCE = 1e-6


@pytest.mark.parametrize(
    "layer_factory,input_shape",
    [
        (lambda: Dense(5), (3, 7)),
        (lambda: Conv2D(4, 3), (2, 6, 7, 3)),
        (lambda: Conv2D(2, 1), (2, 4, 4, 2)),
        (lambda: Conv2D(3, 5), (1, 8, 9, 1)),
        (lambda: AveragePooling2D(2), (2, 5, 6, 3)),
        (lambda: AveragePooling2D(3), (2, 7, 9, 2)),
        (lambda: MaxPooling2D(2), (2, 4, 6, 2)),
        (lambda: BatchNorm2D(), (3, 4, 5, 2)),
        (lambda: ReLU(), (4, 9)),
        (lambda: Flatten(), (2, 3, 4, 2)),
    ],
    ids=[
        "dense",
        "conv3x3",
        "conv1x1",
        "conv5x5",
        "avgpool2",
        "avgpool3",
        "maxpool2",
        "batchnorm",
        "relu",
        "flatten",
    ],
)
def test_gradients_match_numerical(layer_factory, input_shape):
    errors = check_layer_gradients(layer_factory(), input_shape)
    assert max(errors.values()) < _TOLERANCE, errors


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(8)
        layer.build((5,), rng, np.float64)
        out = layer.forward(rng.normal(size=(3, 5)))
        assert out.shape == (3, 8)

    def test_requires_flat_input(self, rng):
        with pytest.raises(ShapeError):
            Dense(4).build((3, 3), rng, np.float64)

    def test_unbuilt_forward_raises(self, rng):
        with pytest.raises(NotFittedError):
            Dense(4).forward(rng.normal(size=(2, 3)))

    def test_rejects_zero_units(self):
        with pytest.raises(ShapeError):
            Dense(0)


class TestConv2D:
    def test_valid_convolution_shape(self, rng):
        layer = Conv2D(6, 3)
        shape = layer.build((10, 12, 2), rng, np.float64)
        assert shape == (8, 10, 6)
        out = layer.forward(rng.normal(size=(2, 10, 12, 2)))
        assert out.shape == (2, 8, 10, 6)

    def test_matches_manual_convolution(self, rng):
        layer = Conv2D(1, 2)
        layer.build((3, 3, 1), rng, np.float64)
        x = rng.normal(size=(1, 3, 3, 1))
        out = layer.forward(x)
        w = layer.weight.value[..., 0, 0]
        expected = sum(
            x[0, di : di + 2, dj : dj + 2, 0] * w[di, dj]
            for di in range(2)
            for dj in range(2)
        )
        assert np.allclose(out[0, ..., 0], expected + layer.bias.value[0])

    def test_input_smaller_than_kernel_rejected(self, rng):
        with pytest.raises(ShapeError):
            Conv2D(2, 5).build((3, 3, 1), rng, np.float64)


class TestPooling:
    def test_average_pool_values(self, rng):
        layer = AveragePooling2D(2)
        layer.build((4, 4, 1), rng, np.float64)
        x = np.arange(16.0).reshape(1, 4, 4, 1)
        out = layer.forward(x)
        assert out[0, 0, 0, 0] == pytest.approx(np.mean([0, 1, 4, 5]))

    def test_max_pool_values(self, rng):
        layer = MaxPooling2D(2)
        layer.build((4, 4, 1), rng, np.float64)
        x = np.arange(16.0).reshape(1, 4, 4, 1)
        out = layer.forward(x)
        assert out[0, 0, 0, 0] == 5.0
        assert out[0, 1, 1, 0] == 15.0

    def test_odd_dimensions_floor(self, rng):
        layer = AveragePooling2D(2)
        shape = layer.build((5, 7, 2), rng, np.float64)
        assert shape == (2, 3, 2)

    def test_odd_dim_backward_shape(self, rng):
        layer = AveragePooling2D(2)
        layer.build((5, 7, 2), rng, np.float64)
        x = rng.normal(size=(2, 5, 7, 2))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
        # Cropped rows/cols receive zero gradient.
        assert np.all(grad[:, 4, :, :] == 0)
        assert np.all(grad[:, :, 6, :] == 0)


class TestBatchNorm:
    def test_normalizes_in_training(self, rng):
        layer = BatchNorm2D()
        layer.build((4, 4, 3), rng, np.float64)
        x = rng.normal(loc=5.0, scale=3.0, size=(8, 4, 4, 3))
        out = layer.forward(x, training=True)
        assert abs(out.mean()) < 1e-6
        assert abs(out.std() - 1.0) < 1e-2

    def test_running_stats_used_in_eval(self, rng):
        layer = BatchNorm2D(momentum=0.5)
        layer.build((2, 2, 1), rng, np.float64)
        x = rng.normal(loc=2.0, size=(16, 2, 2, 1))
        for _ in range(30):
            layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        assert abs(out.mean()) < 0.2

    def test_bad_momentum(self):
        with pytest.raises(ShapeError):
            BatchNorm2D(momentum=1.5)


class TestReLU:
    def test_clips_negative(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 2.0, -3.0]]))
        assert np.array_equal(out, [[0.0, 2.0, 0.0]])

    def test_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(grad, [[0.0, 5.0]])
