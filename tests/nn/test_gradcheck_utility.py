"""Tests for the gradient-checking utility itself."""

import numpy as np
import pytest

from repro.nn import Dense, numerical_gradient


class TestNumericalGradient:
    def test_quadratic(self):
        x = np.array([1.0, 2.0, 3.0])

        def objective():
            return float(np.sum(x**2))

        grad = numerical_gradient(objective, x)
        assert np.allclose(grad, 2 * x, atol=1e-6)

    def test_restores_array(self):
        x = np.array([1.0, -2.0])
        original = x.copy()
        numerical_gradient(lambda: float(np.sum(x)), x)
        assert np.array_equal(x, original)

    def test_linear_gradient_is_weights(self, rng):
        w = rng.normal(size=4)
        x = rng.normal(size=4)

        def objective():
            return float(w @ x)

        assert np.allclose(numerical_gradient(objective, x), w, atol=1e-6)

    def test_multidimensional(self, rng):
        x = rng.normal(size=(2, 3))

        def objective():
            return float(np.sum(np.sin(x)))

        grad = numerical_gradient(objective, x)
        assert np.allclose(grad, np.cos(x), atol=1e-6)


class TestDetectsBrokenGradients:
    def test_catches_wrong_backward(self, rng):
        # Sabotage a Dense layer's backward pass and confirm the checker
        # reports a large error.
        from repro.nn import check_layer_gradients

        class BrokenDense(Dense):
            def backward(self, grad):
                out = super().backward(grad)
                self.weight.grad *= 1.5  # wrong scale
                return out

        errors = check_layer_gradients(BrokenDense(4), (3, 5))
        assert errors["dense/weight"] > 1e-3
