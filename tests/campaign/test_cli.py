"""CLI smoke tests: list-scenarios, generate, sweep resume, cache."""

from __future__ import annotations

import pytest

from repro.campaign.cli import main


@pytest.fixture(scope="module")
def populated_cache(tmp_path_factory):
    """One cached 'smoke' campaign shared by the read-only CLI tests."""
    cache_dir = tmp_path_factory.mktemp("cli-cache")
    code = main(
        ["generate", "--scenario", "smoke", "--cache-dir", str(cache_dir)]
    )
    assert code == 0
    return cache_dir


class TestListScenarios:
    def test_lists_builtins(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("reduced", "smoke", "multi-human-crossing"):
            assert name in out

    def test_unknown_scenario_is_an_error(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                "--scenario",
                "nope",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestGenerate:
    def test_generate_populates_cache(self, populated_cache, capsys):
        # Second generate over the same cache dir is a pure hit.
        code = main(
            [
                "generate",
                "--scenario",
                "smoke",
                "--cache-dir",
                str(populated_cache),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 hit(s), 0 miss(es)" in out
        assert "0 set(s) generated" in out


class TestCacheSubcommand:
    def test_stats_and_list(self, populated_cache, capsys):
        assert (
            main(["cache", "list", "--cache-dir", str(populated_cache)])
            == 0
        )
        assert "complete" in capsys.readouterr().out
        assert (
            main(["cache", "stats", "--cache-dir", str(populated_cache)])
            == 0
        )
        assert "entr(ies)" in capsys.readouterr().out

    def test_clear(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert (
            main(
                [
                    "generate",
                    "--scenario",
                    "smoke",
                    "--cache-dir",
                    str(cache_dir),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        )
        assert "removed 1" in capsys.readouterr().out


class TestSweep:
    def test_generate_feeds_the_sweeps_matching_point(
        self, populated_cache, capsys
    ):
        # The smoke grid includes the base 9.5 dB operating point, so a
        # sweep over a cache populated by `generate` hits that entry.
        assert (
            main(
                [
                    "sweep",
                    "--scenario",
                    "smoke",
                    "--suite",
                    "quick",
                    "--cache-dir",
                    str(populated_cache),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 hit(s), 2 miss(es)" in out


    def test_sweep_twice_hits_cache_and_resumes(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "sweep",
            "--scenario",
            "smoke",
            "--suite",
            "quick",
            "--cache-dir",
            cache_dir,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "SNR sweep" in first
        assert "7 executed, 0 resumed" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 executed, 7 resumed" in second
        assert "no measurement sets regenerated (100% cache hits)" in second
        # The replayed report is identical.
        assert first.splitlines()[:6] == second.splitlines()[:6]


class TestSelfHealing:
    def test_sweep_under_fault_plan_retries_and_reports(
        self, tmp_path, capsys
    ):
        import json

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            json.dumps(
                {
                    "name": "cli-chaos",
                    "specs": [
                        {
                            "site": "step.body",
                            "kind": "io_error",
                            "match": "eval@*",
                            "times": 1,
                        }
                    ],
                }
            )
        )
        code = main(
            [
                "sweep",
                "--scenario",
                "smoke",
                "--suite",
                "quick",
                "--snrs",
                "6",
                "12",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--faults",
                str(plan_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fault plan 'cli-chaos' armed" in out
        assert (
            "self-healing: 1 step attempt(s) retried, "
            "0 step(s) quarantined" in out
        )
        assert "SNR sweep" in out  # the campaign still delivered

    def test_unknown_fault_plan_is_an_error(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "--scenario",
                "smoke",
                "--suite",
                "quick",
                "--snrs",
                "6",
                "12",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--faults",
                "no-such-plan",
            ]
        )
        assert code == 2
        assert "unknown fault plan" in capsys.readouterr().err


class TestScenariosSubcommand:
    def test_describe_prints_the_catalog(self, capsys):
        assert main(["scenarios", "describe"]) == 0
        out = capsys.readouterr().out
        for fragment in (
            "speed_profile",
            "grouped-needs-company",
            "solo-crossing",
        ):
            assert fragment in out

    def test_describe_one_scenario(self, capsys):
        assert (
            main(["scenarios", "describe", "--scenario", "tiny"]) == 0
        )
        out = capsys.readouterr().out
        assert '"name":"tiny"' in out
        assert "ok" in out

    def test_sample_prints_canonical_json_lines(self, capsys):
        assert (
            main(["scenarios", "sample", "--seed", "3", "--count", "4"])
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
        import json as _json

        for line in lines:
            spec = _json.loads(line)
            assert spec["name"].startswith("sampled-3-")

    def test_sample_is_deterministic_per_seed(self, capsys):
        main(["scenarios", "sample", "--seed", "9", "--count", "5"])
        first = capsys.readouterr().out
        main(["scenarios", "sample", "--seed", "9", "--count", "5"])
        assert capsys.readouterr().out == first

    def test_load_registers_scenarios_from_toml(
        self, tmp_path, capsys
    ):
        path = tmp_path / "extra.toml"
        path.write_text(
            "[[scenarios]]\n"
            'name = "cli-loaded"\n'
            'description = "from the cli test"\n'
            "num_humans = 2\n"
        )
        assert main(["scenarios", "load", str(path)]) == 0
        assert "cli-loaded" in capsys.readouterr().out
        assert main(["list-scenarios"]) == 0
        assert "cli-loaded" in capsys.readouterr().out

    def test_load_without_file_is_an_error(self, capsys):
        assert main(["scenarios", "load"]) == 2
        assert "file argument" in capsys.readouterr().err

    def test_broken_file_is_an_error_exit(self, tmp_path, capsys):
        path = tmp_path / "broken.toml"
        path.write_text(
            "[[scenarios]]\n"
            'name = "nope"\n'
            'description = "x"\n'
            'trajectory = "grouped"\n'
            "num_humans = 1\n"
        )
        assert main(["scenarios", "load", str(path)]) == 2
        assert "grouped-needs-company" in capsys.readouterr().err
