"""The shared option table: parser rendering and REST validation.

The same :class:`~repro.campaign.options.OptionSpec` rows drive every
subcommand's argparse flags and the daemon's job-option validation, so
these tests are drift detectors: if a subcommand stops rendering the
table, or the service accepts an option the CLI doesn't (or vice
versa), something here fails.
"""

from __future__ import annotations

import argparse

import pytest

from repro.campaign.cli import build_parser
from repro.campaign.options import (
    OPTION_GROUPS,
    SERVICE_OPTIONS,
    add_option_group,
    default_workers,
    iter_options,
    validate_job_options,
)
from repro.errors import ConfigurationError

#: Option groups each campaign subcommand must render (the contract
#: between the CLI surface and the service job options).
EXPECTED_GROUPS = {
    "sweep": ["common", "robustness", "trace"],
    "train": ["common", "model", "robustness", "trace"],
    "figure": ["common", "model", "trace"],
    "stream": ["common", "model", "robustness", "trace", "execution"],
    "capacity": ["common", "robustness", "trace", "execution"],
    "grid": ["common", "model", "robustness", "trace", "execution"],
}


def _parse_defaults(command: str) -> argparse.Namespace:
    argv = {"figure": [command, "table2"]}.get(command, [command])
    return build_parser().parse_args(argv)


class TestParserRendersTable:
    @pytest.mark.parametrize("command", sorted(EXPECTED_GROUPS))
    def test_subcommand_defaults_match_table(self, command, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
        args = _parse_defaults(command)
        for group in EXPECTED_GROUPS[command]:
            for spec in OPTION_GROUPS[group]:
                if not hasattr(args, spec.name):
                    # `only=`-restricted rendering (e.g. sweep takes
                    # --fresh but not --jobs) is covered separately.
                    continue
                assert getattr(args, spec.name) == spec.resolve_default(), (
                    f"{command} --{spec.flag} default drifted from the "
                    "option table"
                )

    @pytest.mark.parametrize("command", sorted(EXPECTED_GROUPS))
    def test_subcommand_accepts_common_flags(self, command):
        argv = {"figure": [command, "table2"]}.get(command, [command])
        args = build_parser().parse_args(
            argv + ["--cache-dir", "/tmp/x", "--workers", "4", "--verbose"]
        )
        assert args.cache_dir == "/tmp/x"
        assert args.workers == 4
        assert args.verbose is True

    def test_sweep_has_fresh_but_not_jobs(self):
        args = _parse_defaults("sweep")
        assert hasattr(args, "fresh")
        assert not hasattr(args, "jobs")

    @pytest.mark.parametrize("command", ["stream", "capacity", "grid"])
    def test_parallel_commands_expose_jobs(self, command):
        args = _parse_defaults(command)
        assert args.jobs == 1

    def test_workers_default_tracks_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "0")
        assert default_workers() is None
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "junk")
        assert default_workers() is None

    def test_iter_options_rejects_unknown_group(self):
        with pytest.raises(ConfigurationError, match="unknown option group"):
            iter_options("nope")

    def test_add_option_group_help_override(self):
        parser = argparse.ArgumentParser()
        add_option_group(
            parser, "execution", help_overrides={"jobs": "custom help"}
        )
        actions = {a.dest: a for a in parser._actions}
        assert actions["jobs"].help == "custom help"


class TestServiceOptions:
    def test_host_side_options_are_excluded(self):
        # The daemon owns its cache/model roots and stdout: these are
        # never accepted inside a job submission.
        for name in ("cache_dir", "quiet", "model_dir"):
            assert name not in SERVICE_OPTIONS

    def test_service_names_are_a_subset_of_the_table(self):
        table_names = {
            spec.name
            for group in OPTION_GROUPS.values()
            for spec in group
        }
        assert set(SERVICE_OPTIONS) <= table_names

    def test_defaults_fill_missing_options(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
        resolved = validate_job_options(None)
        assert resolved["jobs"] == 1
        assert resolved["retries"] == 3
        assert resolved["fresh"] is False
        assert resolved["faults"] is None
        assert resolved["workers"] is None

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job option"):
            validate_job_options({"bogus": 1})

    def test_host_side_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job option"):
            validate_job_options({"cache_dir": "/tmp/x"})

    def test_bool_flag_requires_bool(self):
        with pytest.raises(ConfigurationError, match="expects a boolean"):
            validate_job_options({"fresh": 1})

    def test_int_option_rejects_bool_and_junk(self):
        with pytest.raises(ConfigurationError, match="expects int"):
            validate_job_options({"jobs": True})
        with pytest.raises(ConfigurationError, match="expects int"):
            validate_job_options({"jobs": "two"})

    def test_valid_payload_coerces_types(self):
        resolved = validate_job_options(
            {"jobs": 2, "step_timeout": "1.5", "faults": "flaky-io"}
        )
        assert resolved["jobs"] == 2
        assert resolved["step_timeout"] == 1.5
        assert resolved["faults"] == "flaky-io"

    def test_string_option_rejects_non_string(self):
        with pytest.raises(ConfigurationError, match="expects a string"):
            validate_job_options({"faults": 3})
