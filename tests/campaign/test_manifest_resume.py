"""Campaign DAG execution and manifest-based resume after a kill."""

from __future__ import annotations

import json

import pytest

from repro.campaign.cache import DatasetCache
from repro.campaign.manifest import CampaignManifest
from repro.campaign.runner import Campaign, CampaignContext, CampaignStep
from repro.campaign.scenario import get_scenario
from repro.errors import ConfigurationError


def _context(tmp_path, directory) -> CampaignContext:
    return CampaignContext(
        config=get_scenario("smoke").resolve(),
        cache=DatasetCache(tmp_path / "cache"),
        directory=directory,
    )


class TestManifest:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = CampaignManifest.load(path)
        assert manifest.status("a") == "pending"
        manifest.mark("a", "done", detail="ok")
        manifest.mark("b", "failed", detail="boom")

        reloaded = CampaignManifest.load(path)
        assert reloaded.status("a") == "done"
        assert reloaded.status("b") == "failed"
        assert reloaded.counts() == {"done": 1, "failed": 1}

    def test_rejects_unknown_status(self, tmp_path):
        manifest = CampaignManifest(tmp_path / "m.json")
        with pytest.raises(ConfigurationError):
            manifest.mark("a", "exploded")


class TestDagValidation:
    def test_duplicate_ids_rejected(self, tmp_path):
        steps = [
            CampaignStep("a", "", lambda ctx: ""),
            CampaignStep("a", "", lambda ctx: ""),
        ]
        with pytest.raises(ConfigurationError, match="duplicate"):
            Campaign("c", steps, tmp_path)

    def test_unknown_dependency_rejected(self, tmp_path):
        steps = [CampaignStep("a", "", lambda ctx: "", depends_on=("z",))]
        with pytest.raises(ConfigurationError, match="unknown step"):
            Campaign("c", steps, tmp_path)

    def test_cycle_rejected(self, tmp_path):
        steps = [
            CampaignStep("a", "", lambda ctx: "", depends_on=("b",)),
            CampaignStep("b", "", lambda ctx: "", depends_on=("a",)),
        ]
        with pytest.raises(ConfigurationError, match="cycle"):
            Campaign("c", steps, tmp_path)

    def test_dependencies_run_first(self, tmp_path):
        order: list[str] = []

        def track(name):
            def run(ctx):
                order.append(name)
                return name

            return run

        steps = [
            CampaignStep("report", "", track("report"), depends_on=("b",)),
            CampaignStep("b", "", track("b"), depends_on=("a",)),
            CampaignStep("a", "", track("a")),
        ]
        campaign = Campaign("c", steps, tmp_path / "dir")
        campaign.run(_context(tmp_path, tmp_path / "dir"))
        assert order == ["a", "b", "report"]

    def test_producer_consumer_chains_interleave(self, tmp_path):
        """Each eval runs right after its dataset, not after all datasets.

        Keeps a cache-cold sweep's peak memory at one operating point's
        datasets instead of the whole grid's.
        """
        order: list[str] = []

        def track(name):
            def run(ctx):
                order.append(name)
                return name

            return run

        steps = [
            CampaignStep("d1", "", track("d1")),
            CampaignStep("e1", "", track("e1"), depends_on=("d1",)),
            CampaignStep("d2", "", track("d2")),
            CampaignStep("e2", "", track("e2"), depends_on=("d2",)),
            CampaignStep(
                "report", "", track("report"), depends_on=("e1", "e2")
            ),
        ]
        campaign = Campaign("c", steps, tmp_path / "dir")
        campaign.run(_context(tmp_path, tmp_path / "dir"))
        assert order == ["d1", "e1", "d2", "e2", "report"]


class TestResume:
    def _steps(self, calls, fail_step=None, exc=RuntimeError):
        def make(name):
            def run(ctx):
                calls.append(name)
                if name == fail_step:
                    raise exc(f"{name} interrupted")
                return json.dumps({"step": name})

            return run

        return [
            CampaignStep("a", "", make("a")),
            CampaignStep("b", "", make("b"), depends_on=("a",)),
            CampaignStep("c", "", make("c"), depends_on=("b",)),
        ]

    def test_resume_after_simulated_kill(self, tmp_path):
        directory = tmp_path / "campaign"
        calls: list[str] = []
        campaign = Campaign(
            "c", self._steps(calls, fail_step="b"), directory
        )
        with pytest.raises(RuntimeError, match="interrupted"):
            campaign.run(_context(tmp_path, directory))
        assert calls == ["a", "b"]
        assert campaign.manifest.status("a") == "done"
        assert campaign.manifest.status("b") == "failed"
        assert campaign.manifest.status("c") == "pending"

        # A fresh process: new Campaign object over the same directory.
        calls2: list[str] = []
        resumed = Campaign("c", self._steps(calls2), directory)
        result = resumed.run(_context(tmp_path, directory))
        assert calls2 == ["b", "c"]  # 'a' resumed from the manifest
        assert result.skipped == ["a"]
        assert result.executed == ["b", "c"]
        assert resumed.manifest.counts() == {"done": 3}

    def test_keyboard_interrupt_is_journaled(self, tmp_path):
        directory = tmp_path / "campaign"
        calls: list[str] = []
        campaign = Campaign(
            "c",
            self._steps(calls, fail_step="b", exc=KeyboardInterrupt),
            directory,
        )
        with pytest.raises(KeyboardInterrupt):
            campaign.run(_context(tmp_path, directory))
        reloaded = CampaignManifest.load(directory / "manifest.json")
        assert reloaded.status("a") == "done"
        assert reloaded.status("b") == "failed"

    def test_fresh_run_ignores_manifest(self, tmp_path):
        directory = tmp_path / "campaign"
        calls: list[str] = []
        campaign = Campaign("c", self._steps(calls), directory)
        campaign.run(_context(tmp_path, directory))
        assert calls == ["a", "b", "c"]

        calls2: list[str] = []
        again = Campaign("c", self._steps(calls2), directory)
        result = again.run(_context(tmp_path, directory), resume=False)
        assert calls2 == ["a", "b", "c"]
        assert result.skipped == []

    def test_step_outputs_persisted(self, tmp_path):
        directory = tmp_path / "campaign"
        campaign = Campaign("c", self._steps([]), directory)
        context = _context(tmp_path, directory)
        campaign.run(context)
        assert json.loads(context.read_output("c")) == {"step": "c"}
        with pytest.raises(ConfigurationError, match="no stored output"):
            context.read_output("zzz")
