"""FileLock timeout semantics and the stale temp-file janitor."""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path

import pytest

from repro.campaign.locking import (
    FileLock,
    _tmp_writer_pid,
    atomic_write_text,
    sweep_stale_tmp,
)
from repro.errors import (
    ConfigurationError,
    LockTimeoutError,
    TransientError,
    is_transient,
)


class TestLockTimeout:
    def test_contended_lock_raises_typed_timeout(self, tmp_path):
        path = tmp_path / "index.lock"
        holder = FileLock(path)
        holder.acquire()
        try:
            waiter = FileLock(path, timeout_s=0.2, poll_s=0.02)
            with pytest.raises(LockTimeoutError, match="wedged"):
                waiter.acquire()
        finally:
            holder.release()
        # Released: the same waiter now succeeds.
        with FileLock(path, timeout_s=1.0):
            pass

    def test_lock_timeout_classified_transient(self):
        exc = LockTimeoutError("could not acquire")
        assert is_transient(exc) is True
        assert isinstance(exc, TransientError)
        # Still catchable by legacy ConfigurationError handlers.
        assert isinstance(exc, ConfigurationError)


def _die_mid_write(directory: str) -> None:
    """Simulate a worker killed between temp write and atomic rename."""
    path = Path(directory) / f".tmp_{os.getpid()}_victim.json"
    path.write_text("{torn")
    os._exit(1)


class TestStaleTmpSweep:
    def test_kill_during_write_litter_is_swept(self, tmp_path):
        proc = multiprocessing.get_context("fork").Process(
            target=_die_mid_write, args=(str(tmp_path),)
        )
        proc.start()
        proc.join()
        litter = list(tmp_path.glob(".tmp_*"))
        assert len(litter) == 1

        live = tmp_path / f".tmp_{os.getpid()}_live.json"
        live.write_text("{inflight")

        removed = sweep_stale_tmp(tmp_path)
        assert removed == litter
        assert not litter[0].exists()
        assert live.exists()  # live writer: never touched

    def test_cache_style_tmp_names_recognized(self, tmp_path):
        dead = tmp_path / ".tmp_set_03.99999999.npz"
        dead.write_bytes(b"partial")
        assert sweep_stale_tmp(tmp_path) == [dead]

    def test_missing_directory_is_a_noop(self, tmp_path):
        assert sweep_stale_tmp(tmp_path / "absent") == []

    def test_writer_pid_parsing(self):
        assert _tmp_writer_pid(".tmp_1234_manifest.json") == 1234
        assert _tmp_writer_pid(".tmp_set_03.4567.npz") == 4567
        assert _tmp_writer_pid("results.json") is None

    def test_atomic_write_leaves_no_litter(self, tmp_path):
        atomic_write_text(tmp_path / "doc.json", "{}")
        assert list(tmp_path.glob(".tmp_*")) == []
        assert (tmp_path / "doc.json").read_text() == "{}"
