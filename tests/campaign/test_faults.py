"""Fault-injection framework: specs, plans, the firing ledger, hooks.

The framework's contract is what makes chaos runs trustworthy: specs
validate up front, every firing is bounded by the cross-process
``O_EXCL`` ledger (a fault never re-fires on retry), and the hooks are
exact no-ops while no plan is armed.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import faults
from repro.errors import (
    ConfigurationError,
    InjectedIOError,
    LockTimeoutError,
    ReproError,
    ServiceDeadlineError,
    StepTimeoutError,
    TransientError,
    WorkerCrashError,
    is_transient,
)


@pytest.fixture()
def arm(tmp_path):
    """Activate a throwaway plan from specs; always disarm on exit."""

    def _arm(*specs, seed=0):
        plan = faults.FaultPlan(
            name="test-plan",
            specs=tuple(specs),
            state_dir=tmp_path / "state",
            seed=seed,
        )
        faults.activate(plan, tmp_path / "plan.json")
        return plan

    yield _arm
    faults.deactivate()


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            faults.FaultSpec("step.body", "explode")

    def test_crash_only_legal_at_worker_body(self):
        with pytest.raises(ConfigurationError, match="crash"):
            faults.FaultSpec("step.body", faults.KIND_CRASH)
        spec = faults.FaultSpec("worker.body", faults.KIND_CRASH)
        assert spec.site == "worker.body"

    def test_times_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="times"):
            faults.FaultSpec("step.body", faults.KIND_STALL, times=0)

    def test_matching_is_site_plus_label_glob(self):
        spec = faults.FaultSpec(
            "worker.body", faults.KIND_IO_ERROR, match="point@*"
        )
        assert spec.matches("worker.body", "point@snr_db=6.0")
        assert not spec.matches("worker.body", "report")
        assert not spec.matches("step.body", "point@snr_db=6.0")

    def test_dict_roundtrip(self):
        spec = faults.FaultSpec(
            "worker.body", faults.KIND_STALL, match="eval@*", times=3,
            delay_s=1.5,
        )
        assert faults.FaultSpec.from_dict(spec.as_dict()) == spec


class TestPlanResolution:
    def test_builtin_names_resolve(self, tmp_path):
        for name in faults.BUILTIN_PLANS:
            plan = faults.resolve_plan(name, tmp_path / "state")
            assert plan.name == name
            assert plan.specs
            assert plan.state_dir == tmp_path / "state"

    def test_unknown_name_lists_builtins(self, tmp_path):
        with pytest.raises(ConfigurationError, match="nightly-chaos"):
            faults.resolve_plan("no-such-plan", tmp_path)

    def test_plan_file_resolves(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(
            json.dumps(
                {
                    "name": "custom",
                    "specs": [
                        {"site": "cache.load", "kind": "corrupt"}
                    ],
                }
            )
        )
        plan = faults.resolve_plan(str(path), tmp_path / "state")
        assert plan.name == "custom"
        assert plan.specs[0].kind == faults.KIND_CORRUPT

    def test_save_load_roundtrip(self, tmp_path):
        plan = faults.resolve_plan("smoke-chaos", tmp_path / "state")
        plan.save(tmp_path / "plan.json")
        loaded = faults.FaultPlan.load(tmp_path / "plan.json")
        assert loaded.name == plan.name
        assert loaded.specs == plan.specs
        assert loaded.state_dir == plan.state_dir

    def test_summary_names_every_spec(self, tmp_path):
        plan = faults.resolve_plan("nightly-chaos", tmp_path)
        assert "crash@worker.body" in plan.summary()
        assert "corrupt@cache.load" in plan.summary()


class TestInjection:
    def test_inject_is_noop_when_disarmed(self):
        faults.deactivate()
        faults.inject("step.body", "anything")  # must not raise

    def test_io_error_fires_bounded_times(self, arm):
        plan = arm(
            faults.FaultSpec("step.body", faults.KIND_IO_ERROR, times=2)
        )
        for _ in range(2):
            with pytest.raises(InjectedIOError):
                faults.inject("step.body", "eval@6.0")
        faults.inject("step.body", "eval@6.0")  # slots spent: silent
        assert plan.fired_count() == 2

    def test_label_mismatch_never_fires(self, arm):
        plan = arm(
            faults.FaultSpec(
                "step.body", faults.KIND_IO_ERROR, match="eval@*"
            )
        )
        faults.inject("step.body", "report")
        faults.inject("cache.load", "eval@6.0")
        assert plan.fired_count() == 0

    def test_ledger_is_shared_across_plan_instances(self, arm, tmp_path):
        spec = faults.FaultSpec("step.body", faults.KIND_IO_ERROR)
        plan = arm(spec)
        with pytest.raises(InjectedIOError):
            faults.inject("step.body", "x")
        # A second process resolving the same state dir sees the spent
        # slot (simulated here by re-activating a fresh plan instance).
        faults.activate(
            faults.FaultPlan(
                name="test-plan",
                specs=(spec,),
                state_dir=plan.state_dir,
            ),
            tmp_path / "plan2.json",
        )
        faults.inject("step.body", "x")  # must not fire again

    def test_stall_sleeps_then_continues(self, arm):
        plan = arm(
            faults.FaultSpec("step.body", faults.KIND_STALL, delay_s=0.0)
        )
        faults.inject("step.body", "x")  # no exception
        assert plan.fired_count() == 1

    def test_corrupt_specs_ignored_by_inject(self, arm):
        plan = arm(faults.FaultSpec("cache.load", faults.KIND_CORRUPT))
        faults.inject("cache.load", "any-key")
        assert plan.fired_count() == 0


class TestCorruptFile:
    def test_corrupts_once_then_stays_spent(self, arm, tmp_path):
        plan = arm(faults.FaultSpec("cache.load", faults.KIND_CORRUPT))
        target = tmp_path / "set_00.npz"
        original = bytes(range(64))
        target.write_bytes(original)
        assert faults.corrupt_file("cache.load", "key", target) is True
        assert target.read_bytes() != original
        assert len(target.read_bytes()) < len(original)
        assert plan.fired_count() == 1
        target.write_bytes(original)
        assert faults.corrupt_file("cache.load", "key", target) is False
        assert target.read_bytes() == original

    def test_missing_file_keeps_the_spec_armed(self, arm, tmp_path):
        plan = arm(faults.FaultSpec("cache.load", faults.KIND_CORRUPT))
        missing = tmp_path / "absent.npz"
        assert faults.corrupt_file("cache.load", "key", missing) is False
        assert plan.fired_count() == 0
        # The slot was not consumed: a later real artifact still gets hit.
        real = tmp_path / "set_00.npz"
        real.write_bytes(b"payload-bytes")
        assert faults.corrupt_file("cache.load", "key", real) is True

    def test_noop_when_disarmed(self, tmp_path):
        faults.deactivate()
        target = tmp_path / "file.bin"
        target.write_bytes(b"intact")
        assert faults.corrupt_file("cache.load", "k", target) is False
        assert target.read_bytes() == b"intact"


class TestActivation:
    def test_activate_publishes_plan_for_child_processes(
        self, arm, tmp_path
    ):
        plan = arm(faults.FaultSpec("step.body", faults.KIND_STALL))
        assert os.environ[faults.ENV_VAR] == str(tmp_path / "plan.json")
        assert faults.active_plan() is plan
        loaded = faults.FaultPlan.load(os.environ[faults.ENV_VAR])
        assert loaded.specs == plan.specs

    def test_deactivate_disarms_and_clears_env(self, arm):
        arm(faults.FaultSpec("step.body", faults.KIND_IO_ERROR))
        faults.deactivate()
        assert faults.ENV_VAR not in os.environ
        assert faults.active_plan() is None
        faults.inject("step.body", "x")  # disarmed: silent


class TestTransientClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            InjectedIOError("injected"),
            LockTimeoutError("lock wedged"),
            StepTimeoutError("step overran"),
            WorkerCrashError("worker died"),
            ServiceDeadlineError("round overran"),
            OSError("disk hiccup"),
            TimeoutError("slow"),
            ConnectionError("reset"),
        ],
    )
    def test_transient_errors(self, exc):
        assert is_transient(exc) is True

    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError("bad flag"),
            ValueError("bad value"),
            RuntimeError("boom"),
        ],
    )
    def test_permanent_errors(self, exc):
        assert is_transient(exc) is False

    def test_lock_timeout_still_catchable_as_configuration_error(self):
        # Typed for retry classification without breaking legacy
        # handlers that catch ConfigurationError around lock use.
        assert issubclass(LockTimeoutError, TransientError)
        assert issubclass(LockTimeoutError, ConfigurationError)
        assert issubclass(TransientError, ReproError)
