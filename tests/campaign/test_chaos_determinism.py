"""Chaos acceptance: a faulted campaign self-heals to identical bytes.

The PR-level acceptance contract of the fault-injection harness: a
small grid campaign run under a seeded fault plan — one worker crash,
one transient I/O error, one corrupted cache artifact — completes via
retries and cache regeneration, with the attempt history journaled in
the manifest, and produces **byte-identical** per-point records,
aggregate ``results.json`` and report to a fault-free run.  Faults may
only ever cost attempts, never change results.
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.campaign import (
    Campaign,
    CampaignContext,
    DatasetCache,
    GridSpec,
    ModelCheckpointRegistry,
    RetryPolicy,
    grid_steps,
)
from repro.campaign.scenario import get_scenario

SPEC = GridSpec(
    name="chaos-grid",
    description="chaos determinism fixture",
    base="smoke",
    axes=(("snr_db", (6.0, 12.0)),),
)

#: Generous per-attempt timeout: supervised workers (the mode where
#: crash faults can fire) without ever killing a healthy attempt.
_RETRY = RetryPolicy(
    max_attempts=4, backoff_base_s=0.0, timeout_s=600.0
)


@pytest.fixture(scope="module")
def root(tmp_path_factory):
    """Cache/model roots shared by the clean and the chaos runs."""
    return tmp_path_factory.mktemp("chaos")


def _run(root, name, specs=None, retry=_RETRY):
    """One grid campaign run, optionally under an armed fault plan."""
    directory = root / name
    campaign = Campaign(
        f"grid[{SPEC.name}]",
        grid_steps(SPEC, suite="quick"),
        directory,
    )
    context = CampaignContext(
        get_scenario(SPEC.base).resolve(),
        DatasetCache(root / "cache"),
        directory,
        checkpoints=ModelCheckpointRegistry(root / "models"),
    )
    plan = None
    if specs is not None:
        plan = faults.FaultPlan(
            name="chaos",
            specs=tuple(specs),
            state_dir=directory / "faults" / "state",
        )
        faults.activate(plan, directory / "faults" / "plan.json")
    try:
        result = campaign.run(
            context, retry=retry, quarantine=True
        )
    finally:
        if plan is not None:
            faults.deactivate()
    return campaign, context, result, plan


def test_chaos_run_heals_to_byte_identical_results(root):
    _, clean_ctx, clean_result, _ = _run(root, "clean")
    assert clean_result.quarantined == []

    campaign, chaos_ctx, chaos_result, plan = _run(
        root,
        "chaos",
        specs=[
            faults.FaultSpec(
                "worker.body", faults.KIND_CRASH, match="point@*"
            ),
            faults.FaultSpec(
                "worker.body", faults.KIND_IO_ERROR, match="point@*"
            ),
            faults.FaultSpec("cache.load", faults.KIND_CORRUPT),
        ],
    )

    # Every injected fault actually fired, and every step healed.
    assert plan.fired_count() == 3
    assert chaos_result.quarantined == []
    assert chaos_result.retried == 2
    # The corrupted cache set was quarantined on disk, then regenerated.
    assert list((root / "cache").rglob("*.corrupt.*"))

    # The self-healing history is journaled in the manifest.
    attempts = [
        entry
        for point in SPEC.expand()
        for entry in campaign.manifest.attempts(f"point@{point.label}")
    ]
    assert len(attempts) == 2
    assert all(entry["action"] == "retry" for entry in attempts)
    assert all(entry["transient"] is True for entry in attempts)

    # Faults cost attempts, never bytes: records, aggregate and report
    # are identical to the fault-free run.
    assert (
        chaos_ctx.directory / "results" / "results.json"
    ).read_bytes() == (
        clean_ctx.directory / "results" / "results.json"
    ).read_bytes()
    # Step payloads carry run-specific cache provenance by design
    # (sets regenerated while healing); the published *record* — the
    # science — must be identical.
    for point in SPEC.expand():
        step_id = f"point@{point.label}"
        chaos_payload = json.loads(chaos_ctx.read_output(step_id))
        clean_payload = json.loads(clean_ctx.read_output(step_id))
        assert chaos_payload["record"] == clean_payload["record"]
    assert chaos_ctx.read_output("report") == clean_ctx.read_output(
        "report"
    )


def test_unhealable_point_quarantined_with_partial_report(root):
    labels = [point.label for point in SPEC.expand()]
    doomed = f"point@{labels[0]}"
    campaign, context, result, _ = _run(
        root,
        "quarantine",
        specs=[
            faults.FaultSpec(
                "worker.body",
                faults.KIND_IO_ERROR,
                match=doomed,
                times=10,
            )
        ],
        retry=RetryPolicy(
            max_attempts=2, backoff_base_s=0.0, timeout_s=600.0
        ),
    )

    # The doomed point exhausted its budget; the rest of the grid and
    # the report still completed.
    assert result.quarantined == [doomed]
    assert "report" in result.executed
    report = context.read_output("report")
    assert "1 scenario(s)" in report
    assert f"1 point(s) quarantined: {labels[0]}" in report
    actions = [
        entry["action"] for entry in campaign.manifest.attempts(doomed)
    ]
    assert actions == ["retry", "quarantine"]
