"""Seeded scenario fuzzing: every sampled spec validates and resolves.

Property-based coverage of the scenario language against the full
PHY/vision/campaign stack: uniform draws from the declared parameter
ranges must (a) pass validation, (b) resolve to consistent
``SimulationConfig`` objects, (c) replay identically for one seed —
in-process and across interpreter invocations — and (d) at tiny scale,
drive the actual generate→decode pipeline end to end.

``REPRO_FUZZ_COUNT`` scales the sample size (the nightly fuzz smoke
raises it; the default keeps tier-1 fast).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.campaign.cache import config_fingerprint
from repro.campaign.params import (
    sample_scenario_specs,
    sample_scenarios,
)
from repro.dataset import build_components, generate_measurement_set
from repro.errors import ConfigurationError

_SRC = Path(__file__).resolve().parents[2] / "src"

#: Samples drawn by the validate+resolve sweep (nightly raises this).
FUZZ_COUNT = int(os.environ.get("REPRO_FUZZ_COUNT", "200"))


class TestSampledSpecsAreValid:
    def test_every_sampled_spec_validates_and_resolves(self):
        specs = sample_scenario_specs(seed=1234, count=FUZZ_COUNT)
        assert len(specs) == FUZZ_COUNT
        fingerprints = set()
        for spec in specs:
            report = spec.validate()
            assert report.ok, report.errors
            scenario = spec.to_scenario()
            config = scenario.resolve()  # dataclass validation runs
            fingerprints.add(config_fingerprint(config))
        # The sampler actually roams the space: the overwhelming
        # majority of draws must resolve to distinct configurations.
        assert len(fingerprints) > FUZZ_COUNT * 0.9

    def test_sampled_scenarios_cover_the_new_axes(self):
        scenarios = sample_scenarios(seed=99, count=100)
        trajectories = {s.trajectory for s in scenarios}
        profiles = {s.speed_profile for s in scenarios}
        rooms = {s.room for s in scenarios}
        assert "grouped" in trajectories
        assert "heterogeneous" in profiles
        assert "corridor" in rooms
        # The rejection sampler must never emit the invalid combo.
        assert not any(
            s.trajectory == "grouped" and s.num_humans < 2
            for s in scenarios
        )

    def test_tiny_scale_clamps_dimensions(self):
        for scenario in sample_scenarios(seed=5, count=20, scale="tiny"):
            assert scenario.base == "tiny"
            assert scenario.num_sets == 3
            assert 6 <= scenario.packets_per_set <= 10

    def test_bad_sampler_arguments_rejected(self):
        with pytest.raises(ConfigurationError, match="scale"):
            sample_scenario_specs(seed=1, count=1, scale="huge")
        with pytest.raises(ConfigurationError, match="count"):
            sample_scenario_specs(seed=1, count=0)


class TestDeterminism:
    def test_same_seed_same_specs_in_process(self):
        first = sample_scenario_specs(seed=7, count=50)
        second = sample_scenario_specs(seed=7, count=50)
        assert [s.canonical_json() for s in first] == [
            s.canonical_json() for s in second
        ]

    def test_different_seeds_differ(self):
        a = sample_scenario_specs(seed=7, count=10)
        b = sample_scenario_specs(seed=8, count=10)
        assert [s.canonical_json() for s in a] != [
            s.canonical_json() for s in b
        ]

    def test_same_seed_same_specs_across_processes(self):
        # The cross-process contract behind the nightly determinism
        # sentinel: a fresh interpreter must print byte-identical
        # canonical JSON for the same seed.
        local = [
            s.canonical_json()
            for s in sample_scenario_specs(seed=7, count=20)
        ]
        script = (
            "import json\n"
            "from repro.campaign.params import sample_scenario_specs\n"
            "print(json.dumps([s.canonical_json() for s in "
            "sample_scenario_specs(seed=7, count=20)]))\n"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(_SRC), "PATH": "/usr/bin:/bin"},
        ).stdout
        assert json.loads(output) == local


class TestTinyScaleRoundTrip:
    def test_sampled_specs_generate_and_decode(self):
        # Drive the full stack — channel render, depth camera, PHY
        # synthesis, receiver decode — for a handful of tiny sampled
        # scenarios, including the new grouped/heterogeneous/corridor
        # axes the sampler roams.
        scenarios = sample_scenarios(seed=11, count=5, scale="tiny")
        for scenario in scenarios:
            config = scenario.resolve()
            components = build_components(config)
            measurement = generate_measurement_set(components, 0)
            assert (
                len(measurement.packets)
                == config.dataset.packets_per_set
            )
            assert len(measurement.frames) > 0
            for record in measurement.packets[:3]:
                assert np.all(np.isfinite(record.h_ls))
                assert np.all(np.isfinite(record.h_true))
