"""Two-process manifest contention: no transition may be lost.

The pre-lock manifest was load-modify-write: two processes sharing one
manifest file would each persist their own in-memory view, silently
dropping the other's records (last-writer-wins).  These tests drive the
locked read-merge-write path from two concurrent processes and assert
every transition survives.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.campaign import CampaignManifest
from repro.campaign.manifest import STATUS_DONE

_SRC = Path(__file__).resolve().parents[2] / "src"

_WRITER = """
import sys
from repro.campaign import CampaignManifest

path, prefix, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
manifest = CampaignManifest.load(path)
for index in range(count):
    manifest.mark(f"{prefix}@{index}", "running")
    manifest.mark(f"{prefix}@{index}", "done", detail=prefix)
"""


def test_two_process_contention_loses_no_steps(tmp_path):
    path = tmp_path / "manifest.json"
    count = 20
    writers = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER, str(path), prefix, str(count)],
            env={"PYTHONPATH": str(_SRC), "PATH": "/usr/bin:/bin"},
        )
        for prefix in ("alpha", "beta")
    ]
    for writer in writers:
        assert writer.wait(timeout=120) == 0

    merged = CampaignManifest.load(path)
    assert len(merged.steps) == 2 * count
    for prefix in ("alpha", "beta"):
        for index in range(count):
            record = merged.steps[f"{prefix}@{index}"]
            assert record["status"] == STATUS_DONE
            assert record["detail"] == prefix


def test_interleaved_marks_within_one_process_merge_from_disk(tmp_path):
    """Two manifest instances over one file see each other's marks."""
    path = tmp_path / "manifest.json"
    first = CampaignManifest.load(path)
    second = CampaignManifest.load(path)
    first.mark("a", "done")
    second.mark("b", "done")
    # The second instance merged the first's record before saving.
    data = json.loads(path.read_text())
    assert set(data["steps"]) == {"a", "b"}
    reloaded = CampaignManifest.load(path)
    assert reloaded.status("a") == STATUS_DONE
    assert reloaded.status("b") == STATUS_DONE
