"""Scenario registry: presets, resolution, registration errors."""

from __future__ import annotations

import pytest

from repro.campaign.scenario import (
    ROOM_PRESETS,
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.config import SimulationConfig
from repro.errors import ConfigurationError


class TestRegistry:
    def test_builtin_presets_present(self):
        names = {s.name for s in list_scenarios()}
        assert {
            "paper",
            "reduced",
            "tiny",
            "smoke",
            "multi-human-crossing",
            "slow-walk",
            "brisk-walk",
            "dense-office",
        } <= names

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(ConfigurationError, match="reduced"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("tiny")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scenario(scenario)
        # replace=True is the explicit override.
        register_scenario(scenario, replace=True)

    def test_unknown_base_and_room_rejected(self):
        with pytest.raises(ConfigurationError, match="base preset"):
            Scenario(name="x", description="", base="huge")
        with pytest.raises(ConfigurationError, match="room preset"):
            Scenario(name="x", description="", room="warehouse")


class TestResolve:
    def test_reduced_resolves_to_reduced_preset(self):
        assert (
            get_scenario("reduced").resolve() == SimulationConfig.reduced()
        )

    def test_smoke_overrides_dimensions(self):
        config = get_scenario("smoke").resolve()
        assert config.dataset.num_sets == 3
        assert config.dataset.packets_per_set == 8
        assert config.dataset.skip_initial < 8

    def test_multi_human_crossing_mobility(self):
        config = get_scenario("multi-human-crossing").resolve()
        assert config.mobility.num_humans == 2
        assert config.mobility.trajectory == "crossing"

    def test_speed_range_override(self):
        config = get_scenario("slow-walk").resolve()
        assert config.mobility.speed_min_mps == pytest.approx(0.15)
        assert config.mobility.speed_max_mps == pytest.approx(0.35)

    def test_dense_office_room(self):
        config = get_scenario("dense-office").resolve()
        assert config.room == ROOM_PRESETS["dense-office"]
        assert len(config.room.scatterers) > len(
            ROOM_PRESETS["paper-lab"].scatterers
        )

    def test_snr_and_seed_overrides(self):
        scenario = Scenario(
            name="x",
            description="",
            base="tiny",
            snr_db=4.5,
            seed=77,
        )
        config = scenario.resolve()
        assert config.channel.snr_db == pytest.approx(4.5)
        assert config.seed == 77


class TestNewAxes:
    def test_corridor_commute_resolves_grouped_heterogeneous(self):
        config = get_scenario("corridor-commute").resolve()
        assert config.room == ROOM_PRESETS["corridor"]
        assert config.mobility.trajectory == "grouped"
        assert config.mobility.num_humans == 3
        assert config.mobility.speed_profile == "heterogeneous"

    def test_grouped_requires_company_at_construction(self):
        # The scenario language's construction-time guard: a grouped
        # trajectory with a single walker has no group to follow.
        with pytest.raises(
            ConfigurationError, match="grouped-needs-company"
        ):
            Scenario(
                name="lonely-group",
                description="",
                trajectory="grouped",
                num_humans=1,
            )

    def test_solo_crossing_stays_valid(self):
        # Deliberate deviation from a stricter rule: crossing with one
        # walker is the established streaming showcase workload
        # (brisk-crossing, stream-smoke, half the mobility-snr grid),
        # so it validates fine — the language flags it as a warning
        # only (see test_params.py), never a construction error.
        scenario = Scenario(
            name="solo-cross",
            description="",
            trajectory="crossing",
            num_humans=1,
        )
        assert scenario.resolve().mobility.trajectory == "crossing"
        assert get_scenario("brisk-crossing").num_humans == 1
        assert get_scenario("stream-smoke").num_humans == 1

    def test_uniform_profile_leaves_config_at_default(self):
        # speed_profile="uniform" must not touch the resolved config:
        # the field is elided from cache canonicalization at its
        # default, which is what keeps pre-existing keys byte-stable.
        config = get_scenario("reduced").resolve()
        assert config.mobility.speed_profile == "uniform"
        assert config == SimulationConfig.reduced()


class TestCacheKeyRegression:
    """Every pre-existing scenario and grid member must keep its key.

    The fingerprints below were captured from the seed revision before
    the scenario-language port (PR 7).  A mismatch here means existing
    on-disk dataset caches — and every model checkpoint keyed off them
    — would silently regenerate; that is a breaking change and must be
    deliberate (bump DATASET_CACHE_SALT and re-pin).
    """

    PINNED_FINGERPRINTS = {
        "brisk-crossing": "4b116c50de210ae1",
        "brisk-walk": "3e7dbad435684abc",
        "dense-office": "bff7fb9bd122d84a",
        "mobility-snr/num_humans=1,speed=0.15-0.35,snr_db=3": "4fdf9a2b3e1b6dff",
        "mobility-snr/num_humans=1,speed=0.15-0.35,snr_db=9.5": "669805d08394d0a8",
        "mobility-snr/num_humans=1,speed=1-1.6,snr_db=3": "955bd9de593f5a9a",
        "mobility-snr/num_humans=1,speed=1-1.6,snr_db=9.5": "4b116c50de210ae1",
        "mobility-snr/num_humans=2,speed=0.15-0.35,snr_db=3": "8ed60175e4c8602b",
        "mobility-snr/num_humans=2,speed=0.15-0.35,snr_db=9.5": "9130b9ebcd7ea640",
        "mobility-snr/num_humans=2,speed=1-1.6,snr_db=3": "5a3615d5dcb90677",
        "mobility-snr/num_humans=2,speed=1-1.6,snr_db=9.5": "45abb680f6a34475",
        "multi-human-crossing": "cee47a668d502a42",
        "paper": "2e88ce7d02d325a2",
        "reduced": "5262ac2cbc5c0888",
        "slow-walk": "f560bb41ca46b217",
        "smoke": "db7c0893a69e4d0c",
        "smoke-grid/snr_db=12,seed=0,speed=0.4-0.8": "5a721dfea46ca339",
        "smoke-grid/snr_db=12,seed=0,speed=1-1.6": "d6c1c7370f27186e",
        "smoke-grid/snr_db=12,seed=1,speed=0.4-0.8": "9eb7df212aadd737",
        "smoke-grid/snr_db=12,seed=1,speed=1-1.6": "97cec3babc38af2f",
        "smoke-grid/snr_db=6,seed=0,speed=0.4-0.8": "9104bfa73a5b8595",
        "smoke-grid/snr_db=6,seed=0,speed=1-1.6": "10e3e0eeb9266995",
        "smoke-grid/snr_db=6,seed=1,speed=0.4-0.8": "50ffa879df327c7f",
        "smoke-grid/snr_db=6,seed=1,speed=1-1.6": "bd8ea8409fec2184",
        "smoke-grid/snr_db=9.5,seed=0,speed=0.4-0.8": "ee3882570bca3de9",
        "smoke-grid/snr_db=9.5,seed=0,speed=1-1.6": "46bf3c568efbf76c",
        "smoke-grid/snr_db=9.5,seed=1,speed=0.4-0.8": "77fbca8dfd266475",
        "smoke-grid/snr_db=9.5,seed=1,speed=1-1.6": "b67fdae36a5946ed",
        "stream-smoke": "a602e225613ae344",
        "tiny": "e309363ebc0f1638",
    }

    def test_every_preexisting_name_still_registered(self):
        registered = {s.name for s in list_scenarios()}
        missing = set(self.PINNED_FINGERPRINTS) - registered
        assert not missing, missing

    def test_every_preexisting_key_is_byte_identical(self):
        from repro.campaign.cache import config_fingerprint

        mismatched = {}
        for name, pinned in self.PINNED_FINGERPRINTS.items():
            actual = config_fingerprint(
                get_scenario(name).resolve()
            )
            if actual != pinned:
                mismatched[name] = (pinned, actual)
        assert not mismatched, mismatched
