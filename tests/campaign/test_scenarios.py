"""Scenario registry: presets, resolution, registration errors."""

from __future__ import annotations

import pytest

from repro.campaign.scenario import (
    ROOM_PRESETS,
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.config import SimulationConfig
from repro.errors import ConfigurationError


class TestRegistry:
    def test_builtin_presets_present(self):
        names = {s.name for s in list_scenarios()}
        assert {
            "paper",
            "reduced",
            "tiny",
            "smoke",
            "multi-human-crossing",
            "slow-walk",
            "brisk-walk",
            "dense-office",
        } <= names

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(ConfigurationError, match="reduced"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("tiny")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scenario(scenario)
        # replace=True is the explicit override.
        register_scenario(scenario, replace=True)

    def test_unknown_base_and_room_rejected(self):
        with pytest.raises(ConfigurationError, match="base preset"):
            Scenario(name="x", description="", base="huge")
        with pytest.raises(ConfigurationError, match="room preset"):
            Scenario(name="x", description="", room="warehouse")


class TestResolve:
    def test_reduced_resolves_to_reduced_preset(self):
        assert (
            get_scenario("reduced").resolve() == SimulationConfig.reduced()
        )

    def test_smoke_overrides_dimensions(self):
        config = get_scenario("smoke").resolve()
        assert config.dataset.num_sets == 3
        assert config.dataset.packets_per_set == 8
        assert config.dataset.skip_initial < 8

    def test_multi_human_crossing_mobility(self):
        config = get_scenario("multi-human-crossing").resolve()
        assert config.mobility.num_humans == 2
        assert config.mobility.trajectory == "crossing"

    def test_speed_range_override(self):
        config = get_scenario("slow-walk").resolve()
        assert config.mobility.speed_min_mps == pytest.approx(0.15)
        assert config.mobility.speed_max_mps == pytest.approx(0.35)

    def test_dense_office_room(self):
        config = get_scenario("dense-office").resolve()
        assert config.room == ROOM_PRESETS["dense-office"]
        assert len(config.room.scatterers) > len(
            ROOM_PRESETS["paper-lab"].scatterers
        )

    def test_snr_and_seed_overrides(self):
        scenario = Scenario(
            name="x",
            description="",
            base="tiny",
            snr_db=4.5,
            seed=77,
        )
        config = scenario.resolve()
        assert config.channel.snr_db == pytest.approx(4.5)
        assert config.seed == 77
