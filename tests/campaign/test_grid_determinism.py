"""Serial-vs-parallel determinism: byte-identical grid results.

The acceptance contract of the parallel executor: the same grid run
with ``jobs=1`` and ``jobs=N`` produces byte-identical per-point
records, aggregate ``results.json`` and report table — scheduling may
only change wall time, never results.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    Campaign,
    CampaignContext,
    DatasetCache,
    GridSpec,
    ModelCheckpointRegistry,
    ResultsStore,
    grid_steps,
)
from repro.campaign.scenario import get_scenario


@pytest.fixture(scope="module")
def spec() -> GridSpec:
    return GridSpec(
        name="determinism-grid",
        description="serial-vs-parallel determinism fixture",
        base="smoke",
        axes=(
            ("snr_db", (6.0, 12.0)),
            ("speed", ((0.4, 0.8), (1.0, 1.6))),
        ),
    )


def _run_grid(spec: GridSpec, root, jobs: int) -> CampaignContext:
    directory = root / "campaign"
    campaign = Campaign(
        f"grid[{spec.name}]",
        grid_steps(spec, suite="quick"),
        directory,
    )
    context = CampaignContext(
        get_scenario(spec.base).resolve(),
        DatasetCache(root / "cache"),
        directory,
        checkpoints=ModelCheckpointRegistry(root / "models"),
    )
    result = campaign.run(context, jobs=jobs)
    assert len(result.executed) == spec.num_points + 1
    return context


def test_jobs1_and_jobs4_records_byte_identical(tmp_path, spec):
    serial = _run_grid(spec, tmp_path / "serial", jobs=1)
    parallel = _run_grid(spec, tmp_path / "parallel", jobs=4)

    serial_store = ResultsStore(serial.directory / "results")
    parallel_store = ResultsStore(parallel.directory / "results")

    serial_records = serial_store.records()
    parallel_records = parallel_store.records()
    assert [key for key, _ in serial_records] == [
        key for key, _ in parallel_records
    ]
    for (key, _), (_, _) in zip(serial_records, parallel_records):
        assert (
            serial_store.directory
            / serial_store.record_path(
                [tuple(pair.split("=")) for pair in key.split(",")]
            ).name
        ).read_bytes() == (
            parallel_store.directory
            / parallel_store.record_path(
                [tuple(pair.split("=")) for pair in key.split(",")]
            ).name
        ).read_bytes()

    # Aggregate and rendered report are byte-identical too.
    assert (
        serial.directory / "results" / "results.json"
    ).read_bytes() == (
        parallel.directory / "results" / "results.json"
    ).read_bytes()
    assert serial.read_output("report") == parallel.read_output("report")


def test_step_payloads_byte_identical(tmp_path, spec):
    serial = _run_grid(spec, tmp_path / "s", jobs=1)
    parallel = _run_grid(spec, tmp_path / "p", jobs=3)
    for point in spec.expand():
        step_id = f"point@{point.label}"
        assert serial.read_output(step_id) == parallel.read_output(
            step_id
        )
