"""Grid expansion: axes, derived scenarios, registry and key stability."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (
    GridSpec,
    config_fingerprint,
    get_grid,
    list_grids,
    register_grid,
)
from repro.campaign.grid import format_axis_value
from repro.campaign.scenario import get_scenario
from repro.errors import ConfigurationError

_SRC = Path(__file__).resolve().parents[2] / "src"


def _demo_spec(name: str = "demo-grid") -> GridSpec:
    return GridSpec(
        name=name,
        description="test grid",
        base="smoke",
        axes=(
            ("snr_db", (6.0, 12.0)),
            ("seed", (0, 1)),
            ("speed", ((0.4, 0.8), (1.0, 1.6))),
        ),
    )


class TestExpansion:
    def test_cartesian_product_in_declared_order(self):
        points = _demo_spec().expand()
        assert len(points) == 8
        # First axis varies slowest (itertools.product semantics).
        assert points[0].coords == (
            ("snr_db", "6"),
            ("seed", "0"),
            ("speed", "0.4-0.8"),
        )
        assert points[-1].coords == (
            ("snr_db", "12"),
            ("seed", "1"),
            ("speed", "1-1.6"),
        )

    def test_member_scenarios_carry_axis_overrides(self):
        spec = _demo_spec()
        point = spec.expand()[-1]
        config = point.scenario.resolve()
        assert config.channel.snr_db == 12.0
        assert config.seed == 1
        assert config.mobility.speed_min_mps == 1.0
        assert config.mobility.speed_max_mps == 1.6
        # Base scenario dimensions survive (smoke: 3 sets x 8 packets).
        base = get_scenario("smoke").resolve()
        assert config.dataset.num_sets == base.dataset.num_sets
        assert (
            config.dataset.packets_per_set
            == base.dataset.packets_per_set
        )

    def test_member_names_are_pure_functions_of_coords(self):
        spec = _demo_spec()
        points = spec.expand()
        assert points[0].scenario.name == (
            "demo-grid/snr_db=6,seed=0,speed=0.4-0.8"
        )
        assert [p.scenario.name for p in points] == [
            p.scenario.name for p in spec.expand()
        ]

    def test_horizon_axis_is_eval_level_not_scenario_level(self):
        spec = GridSpec(
            name="hzn-grid",
            description="horizon grid",
            base="smoke",
            axes=(("horizon", (0, 1)), ("seed", (0,))),
        )
        points = spec.expand()
        assert [p.horizon for p in points] == [0, 1]
        # Horizon does not perturb the scenario config: both members
        # share one dataset cache entry.
        keys = {
            config_fingerprint(p.scenario.resolve()) for p in points
        }
        assert len(keys) == 1

    def test_num_points_matches_expansion(self):
        spec = _demo_spec()
        assert spec.num_points == len(spec.expand()) == 8


class TestValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown grid axis"):
            GridSpec(
                name="bad",
                description="x",
                axes=(("warp_factor", (1, 2)),),
            )

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError, match="declares no axes"):
            GridSpec(name="bad", description="x", axes=())

    def test_empty_axis_values_rejected(self):
        with pytest.raises(ConfigurationError, match="has no values"):
            GridSpec(
                name="bad", description="x", axes=(("seed", ()),)
            )

    def test_repeated_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="repeats axis"):
            GridSpec(
                name="bad",
                description="x",
                axes=(("seed", (0,)), ("seed", (1,))),
            )

    def test_axes_dict_accepted(self):
        spec = GridSpec(
            name="dict-axes",
            description="x",
            base="smoke",
            axes={"seed": (0, 1), "snr_db": (6.0,)},
        )
        assert spec.axis_names == ("seed", "snr_db")

    def test_reserved_characters_in_string_values_rejected(self):
        with pytest.raises(ConfigurationError, match="reserved"):
            format_axis_value("a,b")


class TestFormatAxisValue:
    def test_floats_canonicalize(self):
        assert format_axis_value(9.5) == "9.5"
        assert format_axis_value(6.0) == "6"
        assert format_axis_value(12) == "12"

    def test_tuples_join_with_dash(self):
        assert format_axis_value((0.4, 0.8)) == "0.4-0.8"


class TestRegistry:
    def test_builtin_grids_listed(self):
        names = [spec.name for spec in list_grids()]
        assert "smoke-grid" in names
        assert "mobility-snr" in names

    def test_builtin_members_resolve_through_scenario_registry(self):
        spec = get_grid("smoke-grid")
        member = spec.expand()[0].scenario
        # Any existing step builder accepts grid members by name.
        assert get_scenario(member.name).resolve() == member.resolve()
        assert "grid" in get_scenario(member.name).tags

    def test_register_grid_rejects_duplicates_without_replace(self):
        register_grid(_demo_spec("dup-grid"), replace=True)
        with pytest.raises(ConfigurationError, match="already registered"):
            register_grid(_demo_spec("dup-grid"))

    def test_unknown_grid_lookup_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="smoke-grid"):
            get_grid("no-such-grid")


class TestKeyStability:
    def test_member_cache_keys_stable_across_processes(self):
        """Derived scenario fingerprints agree between interpreters."""
        spec = get_grid("smoke-grid")
        local = {
            point.label: config_fingerprint(point.scenario.resolve())
            for point in spec.expand()
        }
        script = (
            "import json\n"
            "from repro.campaign import config_fingerprint, get_grid\n"
            "spec = get_grid('smoke-grid')\n"
            "print(json.dumps({p.label: config_fingerprint("
            "p.scenario.resolve()) for p in spec.expand()}))\n"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(_SRC), "PATH": "/usr/bin:/bin"},
        ).stdout
        assert json.loads(output) == local


class TestAxisValueValidation:
    def test_axis_values_checked_against_the_schema(self):
        # Construction-time aggregation: every bad value listed.
        with pytest.raises(
            ConfigurationError, match="3 violation"
        ) as excinfo:
            GridSpec(
                name="bad-values",
                description="x",
                axes=(
                    ("num_humans", (0, 99)),
                    ("snr_db", (40.0,)),
                ),
            )
        message = str(excinfo.value)
        assert "num_humans" in message and "snr_db" in message

    def test_horizon_axis_requires_non_negative_ints(self):
        GridSpec(
            name="h-ok", description="x", axes=(("horizon", (0, 3)),)
        )
        with pytest.raises(ConfigurationError, match="horizon"):
            GridSpec(
                name="h-bad",
                description="x",
                axes=(("horizon", (-1,)),),
            )
        with pytest.raises(ConfigurationError, match="horizon"):
            GridSpec(
                name="h-bool",
                description="x",
                axes=(("horizon", (True,)),),
            )

    def test_speed_profile_axis_expands(self):
        spec = GridSpec(
            name="profile-grid",
            description="x",
            base="multi-human-crossing",
            axes=(
                ("speed_profile", ("uniform", "heterogeneous")),
            ),
        )
        points = spec.expand()
        assert [
            p.scenario.speed_profile for p in points
        ] == ["uniform", "heterogeneous"]
        configs = [p.scenario.resolve() for p in points]
        assert configs[0].mobility.speed_profile == "uniform"
        assert configs[1].mobility.speed_profile == "heterogeneous"

    def test_inconsistent_member_fails_at_expansion(self):
        # Axis values valid individually, combination invalid: the
        # grouped-needs-company condition fires per member, at
        # expansion, with the member's full violation list.
        spec = GridSpec(
            name="lonely-grouped-grid",
            description="x",
            base="tiny",
            axes=(
                ("trajectory", ("grouped",)),
                ("num_humans", (1,)),
            ),
        )
        with pytest.raises(
            ConfigurationError, match="grouped-needs-company"
        ):
            spec.expand()
