"""Training-campaign tests: CLI smoke, kill-resume, zero retraining."""

from __future__ import annotations

import pytest

from repro.campaign.cache import DatasetCache
from repro.campaign.cli import main
from repro.campaign.models import ModelCheckpointRegistry
from repro.campaign.runner import Campaign, CampaignContext, train_steps
from repro.campaign.scenario import get_scenario
from repro.errors import ConfigurationError


class TestTrainCli:
    @pytest.fixture(scope="class")
    def train_dirs(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("train-cli")
        return str(base / "cache"), str(base / "models")

    def _argv(self, cache_dir: str, model_dir: str) -> list[str]:
        return [
            "train",
            "--scenario",
            "smoke",
            "--combinations",
            "2",
            "--cache-dir",
            cache_dir,
            "--model-dir",
            model_dir,
        ]

    def test_first_run_trains_every_variant(self, train_dirs, capsys):
        cache_dir, model_dir = train_dirs
        assert main(self._argv(cache_dir, model_dir)) == 0
        out = capsys.readouterr().out
        assert "Training campaign — 2 Table 2 variant(s)" in out
        assert "2 model(s) trained, 0 resolved from checkpoints" in out
        assert "no models retrained" not in out

    def test_repeat_run_reports_zero_retraining(self, train_dirs, capsys):
        cache_dir, model_dir = train_dirs
        assert main(self._argv(cache_dir, model_dir)) == 0
        out = capsys.readouterr().out
        assert "0 executed, 4 resumed" in out
        assert "0 model(s) loaded, 0 model(s) trained" in out
        assert "no models retrained (100% checkpoint hits)" in out

    def test_fresh_run_hits_checkpoints(self, train_dirs, capsys):
        """--fresh re-executes the steps; the registry serves every model."""
        cache_dir, model_dir = train_dirs
        assert main(self._argv(cache_dir, model_dir) + ["--fresh"]) == 0
        out = capsys.readouterr().out
        assert "2 model(s) loaded, 0 model(s) trained" in out
        assert "no models retrained (100% checkpoint hits)" in out

    def test_wiped_registry_forces_retraining(self, train_dirs, capsys):
        """A done manifest must not claim checkpoint hits over a wiped
        (or different) --model-dir: the stale steps re-execute."""
        import shutil

        cache_dir, model_dir = train_dirs
        shutil.rmtree(model_dir)
        assert main(self._argv(cache_dir, model_dir)) == 0
        out = capsys.readouterr().out
        assert "2 model(s) trained" in out
        assert "no models retrained" not in out
        # And the follow-up run is back to a pure replay.
        assert main(self._argv(cache_dir, model_dir)) == 0
        out = capsys.readouterr().out
        assert "no models retrained (100% checkpoint hits)" in out

    def test_lost_payload_reopens_report(self, train_dirs, capsys):
        """A done train step whose payload file vanished re-executes AND
        the report is rebuilt — no stale summary over live stats."""
        import pathlib

        cache_dir, model_dir = train_dirs
        assert main(self._argv(cache_dir, model_dir)) == 0
        capsys.readouterr()
        campaigns = pathlib.Path(cache_dir) / "campaigns"
        (outputs,) = campaigns.glob("train-smoke-*/outputs")
        (outputs / "train@combo01@h0.out").unlink()
        assert main(self._argv(cache_dir, model_dir)) == 0
        out = capsys.readouterr().out
        # The step re-ran against the intact registry (checkpoint hit)
        # and the report was regenerated from the fresh payload.
        assert "1 model(s) loaded, 0 model(s) trained" in out
        assert "no models retrained (100% checkpoint hits)" in out
        assert "0 model(s) trained, 2 resolved" not in out

    def test_multi_horizon_trains_fig11_variants(
        self, train_dirs, capsys
    ):
        """--horizons 0 1 trains one model per (combination, horizon);
        already-cached horizon-0 models are served by the registry."""
        cache_dir, model_dir = train_dirs
        argv = self._argv(cache_dir, model_dir)
        argv[argv.index("--combinations") + 1] = "1"
        assert main(argv + ["--horizons", "0", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 model(s) trained, 1 resolved from checkpoints" in out


class _KillAfter(ModelCheckpointRegistry):
    """Registry that simulates a mid-campaign kill after N trainings."""

    def __init__(self, root, survive_calls: int) -> None:
        super().__init__(root)
        self.survive_calls = survive_calls

    def load_or_train(self, *args, **kwargs):
        if self.survive_calls == 0:
            raise KeyboardInterrupt("simulated mid-training kill")
        self.survive_calls -= 1
        return super().load_or_train(*args, **kwargs)


class TestKillResume:
    def test_killed_run_resumes_at_unfinished_variant(self, tmp_path):
        config = get_scenario("smoke").resolve()
        cache = DatasetCache(tmp_path / "cache")
        directory = tmp_path / "campaign"
        steps = train_steps(config, num_combinations=2)

        killer = _KillAfter(tmp_path / "models", survive_calls=1)
        campaign = Campaign("train[test]", steps, directory)
        context = CampaignContext(
            config, cache, directory, checkpoints=killer
        )
        with pytest.raises(KeyboardInterrupt):
            campaign.run(context)
        assert killer.stats.models_trained == 1

        # The resumed run skips the completed variant entirely (manifest)
        # and only trains the one the kill interrupted.
        registry = ModelCheckpointRegistry(tmp_path / "models")
        campaign = Campaign(
            "train[test]", train_steps(config, num_combinations=2), directory
        )
        context = CampaignContext(
            config, cache, directory, checkpoints=registry
        )
        result = campaign.run(context)
        assert "train@combo01@h0" in result.skipped
        assert "train@combo02@h0" in result.executed
        assert registry.stats.models_trained == 1
        assert registry.stats.models_loaded == 0
        report = context.read_output("report")
        assert "2 Table 2 variant(s)" in report

        # A third run is a pure manifest replay: nothing executes.
        replay_registry = ModelCheckpointRegistry(tmp_path / "models")
        campaign = Campaign(
            "train[test]", train_steps(config, num_combinations=2), directory
        )
        context = CampaignContext(
            config, cache, directory, checkpoints=replay_registry
        )
        result = campaign.run(context)
        assert result.executed == []
        assert replay_registry.stats.models_trained == 0


class TestTrainStepsValidation:
    def test_requires_checkpoint_registry(self, tmp_path):
        config = get_scenario("smoke").resolve()
        cache = DatasetCache(tmp_path / "cache")
        directory = tmp_path / "campaign"
        campaign = Campaign(
            "train[test]",
            train_steps(config, num_combinations=1),
            directory,
        )
        context = CampaignContext(config, cache, directory)
        with pytest.raises(ConfigurationError):
            campaign.run(context)

    def test_rejects_bad_arguments(self, tmp_path):
        config = get_scenario("smoke").resolve()
        with pytest.raises(ConfigurationError):
            train_steps(config, num_combinations=0)
        with pytest.raises(ConfigurationError):
            train_steps(config, horizons=(-1,))
        with pytest.raises(ConfigurationError):
            train_steps(config, horizons=())
