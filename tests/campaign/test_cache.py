"""Dataset cache: key stability, hit/miss accounting, set-level resume."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.campaign.cache import DatasetCache, config_fingerprint
from repro.campaign.scenario import get_scenario
from repro.config import SimulationConfig
from repro.dataset import build_components, generate_dataset
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def micro_config() -> SimulationConfig:
    return get_scenario("smoke").resolve()


class TestFingerprint:
    def test_stable_across_instances(self, micro_config):
        again = get_scenario("smoke").resolve()
        assert config_fingerprint(micro_config) == config_fingerprint(again)

    def test_any_field_change_changes_key(self, micro_config):
        base = config_fingerprint(micro_config)
        changed = [
            micro_config.replace(seed=1),
            micro_config.replace(
                channel=dataclasses.replace(
                    micro_config.channel, snr_db=7.0
                )
            ),
            micro_config.replace(
                dataset=dataclasses.replace(
                    micro_config.dataset, packets_per_set=9
                )
            ),
            micro_config.replace(
                mobility=dataclasses.replace(
                    micro_config.mobility, num_humans=2
                )
            ),
        ]
        keys = {config_fingerprint(c) for c in changed}
        assert base not in keys
        assert len(keys) == len(changed)

    def test_key_format(self, micro_config):
        key = config_fingerprint(micro_config)
        assert len(key) == 16
        int(key, 16)  # hex

    def test_engine_is_part_of_the_key(self, micro_config, tmp_path):
        # The engines agree only to 1e-10, so a scalar verification run
        # must never be served batch-generated floats.
        assert config_fingerprint(
            micro_config, engine="batch"
        ) != config_fingerprint(micro_config, engine="scalar")
        cache = DatasetCache(tmp_path / "cache")
        cache.load_or_generate(micro_config, engine="batch")
        cache.stats.reset()
        cache.load_or_generate(micro_config, engine="scalar")
        assert cache.stats.misses == 1  # not served the batch entry
        assert len(cache.entries()) == 2


class TestLoadOrGenerate:
    def test_miss_then_hit(self, micro_config, tmp_path):
        cache = DatasetCache(tmp_path / "cache")
        sets = cache.load_or_generate(micro_config)
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        assert cache.stats.sets_generated == micro_config.dataset.num_sets

        reloaded = cache.load_or_generate(micro_config)
        assert cache.stats.hits == 1
        assert cache.stats.sets_generated == micro_config.dataset.num_sets

        # The reloaded campaign is numerically identical to the fresh one.
        fresh = generate_dataset(
            micro_config, build_components(micro_config)
        )
        for cached_set, fresh_set in zip(reloaded, fresh):
            assert cached_set.index == fresh_set.index
            np.testing.assert_allclose(
                np.stack([p.h_ls for p in cached_set.packets]),
                np.stack([p.h_ls for p in fresh_set.packets]),
            )
        assert [s.index for s in sets] == [s.index for s in reloaded]

    def test_partial_entry_resumes_missing_sets_only(
        self, micro_config, tmp_path
    ):
        cache = DatasetCache(tmp_path / "cache")
        cache.load_or_generate(micro_config)
        # Simulate a campaign killed mid-generation: one set file gone.
        victim = cache.entry_dir(micro_config) / "set_01.npz"
        victim.unlink()
        cache.stats.reset()

        sets = cache.load_or_generate(micro_config)
        assert cache.stats.misses == 1
        assert cache.stats.sets_generated == 1  # only the missing set
        assert len(sets) == micro_config.dataset.num_sets
        assert [s.index for s in sets] == list(
            range(micro_config.dataset.num_sets)
        )

    def test_force_regenerates(self, micro_config, tmp_path):
        cache = DatasetCache(tmp_path / "cache")
        cache.load_or_generate(micro_config)
        cache.stats.reset()
        cache.load_or_generate(micro_config, force=True)
        assert cache.stats.misses == 1
        assert cache.stats.sets_generated == micro_config.dataset.num_sets


class TestIntegrity:
    def test_corrupt_set_quarantined_and_regenerated(
        self, micro_config, tmp_path, capsys
    ):
        """Flipped bytes are a miss-plus-regenerate, never a crash."""
        cache = DatasetCache(tmp_path / "cache")
        original = cache.load_or_generate(micro_config)
        victim = cache.entry_dir(micro_config) / "set_01.npz"
        data = victim.read_bytes()
        victim.write_bytes(bytes(b ^ 0xFF for b in data[: len(data) // 2]))
        cache.stats.reset()

        healed = cache.load_or_generate(micro_config)
        assert cache.stats.sets_corrupt == 1
        assert cache.stats.sets_generated == 1  # only the bad set
        assert "cache corruption detected" in capsys.readouterr().out
        # The quarantined bytes are kept for post-mortems...
        assert list(
            cache.entry_dir(micro_config).glob("set_01.npz.corrupt.*")
        )
        # ...and the regenerated set is numerically identical.
        np.testing.assert_array_equal(
            np.stack([p.h_ls for p in healed[1].packets]),
            np.stack([p.h_ls for p in original[1].packets]),
        )

    def test_digest_sidecars_written_at_save(
        self, micro_config, tmp_path
    ):
        cache = DatasetCache(tmp_path / "cache")
        cache.load_or_generate(micro_config)
        directory = cache.entry_dir(micro_config)
        for i in range(micro_config.dataset.num_sets):
            assert (directory / f"set_{i:02d}.npz.sha256").exists()

    def test_legacy_entry_without_sidecar_backfilled(
        self, micro_config, tmp_path
    ):
        cache = DatasetCache(tmp_path / "cache")
        cache.load_or_generate(micro_config)
        directory = cache.entry_dir(micro_config)
        sidecar = directory / "set_00.npz.sha256"
        sidecar.unlink()
        cache.stats.reset()

        cache.load_or_generate(micro_config)
        assert cache.stats.sets_corrupt == 0  # no false positive
        assert cache.stats.sets_generated == 0
        assert sidecar.exists()  # hashed and recorded for next time


class TestInvalidation:
    def test_invalidate_and_entries(self, micro_config, tmp_path):
        cache = DatasetCache(tmp_path / "cache")
        cache.load_or_generate(micro_config)
        entries = cache.entries()
        assert len(entries) == 1
        assert entries[0].complete
        assert entries[0].key == cache.key_for(micro_config)

        assert cache.invalidate(config=micro_config) == 1
        assert cache.entries() == []
        assert cache.invalidate(key="0" * 16) == 0

    def test_invalidate_rejects_non_fingerprint_keys(self, tmp_path):
        cache = DatasetCache(tmp_path / "cache")
        # Traversal or campaign-dir names must never reach rmtree.
        for bad in ("../..", "campaigns", "abc", "Z" * 16, ""):
            with pytest.raises(ConfigurationError, match="cache key"):
                cache.invalidate(key=bad)

    def test_invalidate_needs_exactly_one_selector(
        self, micro_config, tmp_path
    ):
        cache = DatasetCache(tmp_path / "cache")
        with pytest.raises(ConfigurationError):
            cache.invalidate()
        with pytest.raises(ConfigurationError):
            cache.invalidate(config=micro_config, key="abc")

    def test_clear(self, micro_config, tmp_path):
        cache = DatasetCache(tmp_path / "cache")
        cache.load_or_generate(micro_config)
        assert cache.clear() == 1
        assert cache.entries() == []


class TestPostV2FieldElision:
    """New config fields must not disturb pre-existing cache keys.

    MobilityConfig grew speed_profile/group_spread_m after the v2
    cache salt; _canonical elides them at their defaults so every
    existing dataset and model key stays byte-identical, while any
    non-default value still changes the key.
    """

    def test_default_new_fields_keep_the_old_key(self, micro_config):
        assert micro_config.mobility.speed_profile == "uniform"
        canonical_mobility = dataclasses.asdict(micro_config.mobility)
        # The elided fields exist on the dataclass...
        assert "speed_profile" in canonical_mobility
        # ...but the smoke fingerprint equals its pre-port pin.
        assert config_fingerprint(micro_config) == "db7c0893a69e4d0c"

    def test_activating_a_new_field_changes_the_key(self, micro_config):
        base = config_fingerprint(micro_config)
        changed = micro_config.replace(
            mobility=dataclasses.replace(
                micro_config.mobility,
                num_humans=2,
                speed_profile="heterogeneous",
            )
        )
        assert config_fingerprint(changed) != base
        spread = micro_config.replace(
            mobility=dataclasses.replace(
                micro_config.mobility, group_spread_m=1.0
            )
        )
        assert config_fingerprint(spread) != base
