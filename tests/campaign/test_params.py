"""Scenario language: parameters, conditions, aggregation, delta copies."""

from __future__ import annotations

import pytest

from repro.campaign.params import (
    SCENARIO_CONDITIONS,
    SCENARIO_PARAMETERS,
    Parameter,
    ScenarioSpec,
    ValidationReport,
    build_room,
    get_parameter,
    load_scenario_file,
    spec_from_scenario,
    validate_room_values,
    validate_scenario_values,
)
from repro.campaign.scenario import ROOM_PRESETS, Scenario, get_scenario
from repro.errors import ConfigurationError


def _valid_values(**overrides):
    values = {"name": "t", "description": "test spec"}
    values.update(overrides)
    return values


class TestParameter:
    def test_type_enforced(self):
        parameter = get_parameter("num_humans")
        assert parameter.violations(2) == []
        problems = parameter.violations("two")
        assert len(problems) == 1
        assert "expected int" in problems[0]

    def test_bool_is_not_an_int(self):
        # isinstance(True, int) is True in Python; the schema closes
        # that hole so a grid axis of (True, False) cannot masquerade
        # as a num_humans axis.
        problems = get_parameter("num_humans").violations(True)
        assert problems and "expected int" in problems[0]

    def test_int_accepted_where_float_expected(self):
        assert get_parameter("snr_db").violations(9) == []

    def test_bounds_enforced_inclusive(self):
        parameter = get_parameter("num_humans")
        low, high = parameter.bounds
        assert parameter.violations(low) == []
        assert parameter.violations(high) == []
        assert parameter.violations(low - 1)
        assert parameter.violations(high + 1)

    def test_bounds_elementwise_on_tuples(self):
        parameter = get_parameter("speed_range_mps")
        assert parameter.violations((0.3, 0.8)) == []
        problems = parameter.violations((0.3, 99.0))
        assert len(problems) == 1
        assert "99.0" in problems[0]

    def test_tuple_length_enforced(self):
        problems = get_parameter("speed_range_mps").violations(
            (0.3, 0.5, 0.8)
        )
        assert any("entries" in p for p in problems)

    def test_choices_with_label_phrase(self):
        problems = get_parameter("base").violations("huge")
        assert problems and "base preset" in problems[0]
        problems = get_parameter("room").violations("warehouse")
        assert problems and "room preset" in problems[0]

    def test_optional_none_allowed_required_none_rejected(self):
        assert get_parameter("snr_db").violations(None) == []
        problems = get_parameter("stream_links").violations(None)
        assert problems and "required" in problems[0]

    def test_every_violation_reported_not_just_first(self):
        # One bad tuple: wrong element type AND an out-of-range value.
        problems = get_parameter("snr_grid_db").violations(
            ("high", 99.0)
        )
        assert len(problems) == 2

    def test_unknown_parameter_lookup_raises(self):
        with pytest.raises(ConfigurationError, match="num_humans"):
            get_parameter("no-such-parameter")

    def test_custom_parameter_allowed_predicate(self):
        parameter = Parameter(
            name="p",
            type_hint=int,
            description="even only",
            allowed=lambda v: None if v % 2 == 0 else "must be even",
        )
        assert parameter.violations(2) == []
        assert parameter.violations(3) == ["p: must be even"]


class TestConditions:
    def test_declared_evaluation_order(self):
        # Conditions evaluate (and report) in declared order; this pin
        # is the order tests and docs rely on.
        assert [c.name for c in SCENARIO_CONDITIONS] == [
            "speed-range-ordered",
            "grouped-needs-company",
            "solo-crossing",
            "snr-grid-sorted-unique",
            "stream-links-positive",
        ]

    def test_violations_report_in_declared_order(self):
        report = validate_scenario_values(
            _valid_values(
                speed_range_mps=(1.6, 1.0),
                trajectory="grouped",
                num_humans=1,
                snr_grid_db=(9.5, 3.0),
            )
        )
        names = [e.split(":")[0] for e in report.errors]
        assert names == [
            "speed-range-ordered",
            "grouped-needs-company",
            "snr-grid-sorted-unique",
        ]

    def test_condition_skipped_when_required_parameter_failed(self):
        # num_humans is type-broken AND the grouped condition would
        # fire; only the parameter violation must be reported — a
        # type-broken parameter never cascades into condition noise.
        report = validate_scenario_values(
            _valid_values(trajectory="grouped", num_humans="many")
        )
        assert len(report.errors) == 1
        assert "expected int" in report.errors[0]
        assert not any(
            "grouped-needs-company" in e for e in report.errors
        )

    def test_grouped_condition_fires_when_parameters_valid(self):
        report = validate_scenario_values(
            _valid_values(trajectory="grouped", num_humans=1)
        )
        assert len(report.errors) == 1
        assert "grouped-needs-company" in report.errors[0]

    def test_solo_crossing_is_warning_not_error(self):
        report = validate_scenario_values(
            _valid_values(trajectory="crossing", num_humans=1)
        )
        assert report.ok
        assert any("solo-crossing" in w for w in report.warnings)

    def test_snr_grid_must_be_strictly_ascending(self):
        for grid in ((9.5, 3.0), (6.0, 6.0, 9.5)):
            report = validate_scenario_values(
                _valid_values(snr_grid_db=grid)
            )
            assert any(
                "snr-grid-sorted-unique" in e for e in report.errors
            )

    def test_speed_range_min_le_max(self):
        report = validate_scenario_values(
            _valid_values(speed_range_mps=(1.6, 1.0))
        )
        assert any(
            "speed-range-ordered" in e for e in report.errors
        )


class TestAggregation:
    def test_all_violations_listed_in_one_error(self):
        report = validate_scenario_values(
            _valid_values(
                base="huge",
                room="warehouse",
                snr_grid_db=(),
                stream_links=0,
            )
        )
        assert len(report.errors) == 4
        with pytest.raises(
            ConfigurationError, match="4 violation"
        ) as excinfo:
            report.raise_for_errors()
        message = str(excinfo.value)
        for fragment in (
            "base preset",
            "room preset",
            "snr_grid_db",
            "stream_links",
        ):
            assert fragment in message

    def test_unknown_keys_are_errors(self):
        report = validate_scenario_values(
            _valid_values(walkers=3)
        )
        assert any("unknown parameter" in e for e in report.errors)

    def test_ok_report_raises_nothing(self):
        report = validate_scenario_values(_valid_values())
        assert report.ok
        report.raise_for_errors()
        assert report.summary().endswith("ok")

    def test_report_summary_counts(self):
        report = ValidationReport(
            subject="x", errors=("a", "b"), warnings=("c",)
        )
        assert "2 error(s)" in report.summary()
        assert "1 warning(s)" in report.summary()


class TestDeltaCopies:
    def test_delta_overlays_and_validates(self):
        spec = spec_from_scenario(get_scenario("tiny"))
        variant = spec.delta(name="tiny-2h", num_humans=2)
        assert variant.validate().ok
        scenario = variant.to_scenario()
        assert scenario.num_humans == 2
        assert scenario.base == "tiny"  # untouched fields survive

    def test_delta_does_not_mutate_the_original(self):
        spec = spec_from_scenario(get_scenario("tiny"))
        before = spec.canonical_json()
        spec.delta(num_humans=5)
        assert spec.canonical_json() == before

    def test_inconsistent_delta_fails_at_materialization(self):
        spec = spec_from_scenario(get_scenario("tiny"))
        bad = spec.delta(trajectory="grouped", num_humans=1)
        with pytest.raises(
            ConfigurationError, match="grouped-needs-company"
        ):
            bad.to_scenario()

    def test_scenario_variant_routes_through_the_schema(self):
        scenario = get_scenario("tiny")
        variant = scenario.variant(
            name="tiny-crossing", trajectory="crossing", num_humans=2
        )
        assert isinstance(variant, Scenario)
        assert variant.trajectory == "crossing"
        with pytest.raises(ConfigurationError, match="violation"):
            scenario.variant(name="bad", base="huge", stream_links=0)

    def test_lists_normalize_to_tuples(self):
        spec = ScenarioSpec.from_mapping(
            _valid_values(speed_range_mps=[0.3, 0.8])
        )
        assert spec.validate().ok
        assert spec.to_scenario().speed_range_mps == (0.3, 0.8)


class TestRoomSchema:
    def _room_values(self, **overrides):
        values = {
            "width_m": 9.0,
            "depth_m": 7.0,
            "tx_position": (1.0, 3.5, 1.2),
            "rx_position": (8.0, 3.5, 1.2),
            "movement_area": (2.0, 1.0, 7.0, 6.0),
        }
        values.update(overrides)
        return values

    def test_valid_room_builds(self):
        room = build_room(self._room_values(), "test-room")
        assert room.width_m == 9.0

    def test_movement_area_must_fit_the_room(self):
        report = validate_room_values(
            self._room_values(movement_area=(2.0, 1.0, 12.0, 6.0))
        )
        assert any(
            "movement-area-in-room" in e for e in report.errors
        )

    def test_devices_must_be_inside(self):
        report = validate_room_values(
            self._room_values(tx_position=(20.0, 3.5, 1.2))
        )
        assert any("devices-in-room" in e for e in report.errors)

    def test_aggregates_all_room_violations(self):
        report = validate_room_values(
            self._room_values(
                width_m=0.1, wall_reflectivity=2.0, bogus=1
            )
        )
        assert len(report.errors) >= 3


class TestScenarioFiles:
    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "extra.toml"
        path.write_text(
            """
[rooms.test-hall]
width_m = 11.0
depth_m = 9.0
tx_position = [1.0, 4.5, 1.2]
rx_position = [10.0, 4.5, 1.2]
movement_area = [2.0, 1.5, 9.0, 7.5]

[[scenarios]]
name = "hall-walk"
description = "one walker in the test hall"
room = "test-hall"
snr_grid_db = [3.0, 9.5]
tags = ["file"]
"""
        )
        try:
            loaded = load_scenario_file(path)
            assert [s.name for s in loaded] == ["hall-walk"]
            assert "test-hall" in ROOM_PRESETS
            config = get_scenario("hall-walk").resolve()
            assert config.room.width_m == 11.0
        finally:
            ROOM_PRESETS.pop("test-hall", None)

    def test_json_files_load_too(self, tmp_path):
        path = tmp_path / "extra.json"
        path.write_text(
            '{"scenarios": [{"name": "json-walk", '
            '"description": "from json", "num_humans": 2}]}'
        )
        loaded = load_scenario_file(path, register=False)
        assert loaded[0].num_humans == 2

    def test_broken_file_registers_nothing(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text(
            """
[rooms.shoebox]
width_m = 2.0
depth_m = 2.0
tx_position = [1.0, 1.0, 1.2]
rx_position = [1.5, 1.0, 1.2]
movement_area = [0.5, 0.5, 3.5, 1.5]

[[scenarios]]
name = "broken-grouped"
description = "grouped needs company"
trajectory = "grouped"
num_humans = 1
"""
        )
        with pytest.raises(
            ConfigurationError, match="violation"
        ) as excinfo:
            load_scenario_file(path)
        message = str(excinfo.value)
        assert "movement-area-in-room" in message
        assert "grouped-needs-company" in message
        assert "shoebox" not in ROOM_PRESETS

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "scenarios.yaml"
        path.write_text("scenarios: []")
        with pytest.raises(ConfigurationError, match="toml"):
            load_scenario_file(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no such"):
            load_scenario_file(tmp_path / "nope.toml")


class TestSchemaCatalog:
    def test_every_scenario_field_is_declared(self):
        import dataclasses

        declared = {p.name for p in SCENARIO_PARAMETERS}
        fields = {f.name for f in dataclasses.fields(Scenario)}
        assert declared == fields

    def test_describe_lists_every_parameter_and_condition(self):
        from repro.campaign.params import describe_parameters

        text = describe_parameters()
        for parameter in SCENARIO_PARAMETERS:
            assert parameter.name in text
        for condition in SCENARIO_CONDITIONS:
            assert condition.name in text
