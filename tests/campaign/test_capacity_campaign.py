"""Capacity campaign wiring: steps, determinism, grid axes, schema.

The ``capacity@<links>`` steps are pure queueing simulations, so the
campaign layer's strongest guarantee applies to them in full: serial
and ``jobs=N`` runs produce byte-identical step payloads, and the
report renders the SLA summary + capacity curve purely from persisted
JSON (``run_on_partial`` — quarantined points are named, not fatal).
"""

import json

import pytest

from repro.campaign import Campaign, CampaignContext, DatasetCache
from repro.campaign.grid import AXIS_FIELDS, get_grid
from repro.campaign.params import SCENARIO_PARAMETERS, spec_from_scenario
from repro.campaign.runner import capacity_steps
from repro.campaign.scenario import Scenario, get_scenario
from repro.config import SimulationConfig
from repro.errors import ConfigurationError

_LINKS = (4, 8)


def _context(tmp_path, workers=None) -> CampaignContext:
    return CampaignContext(
        SimulationConfig.tiny(),
        DatasetCache(tmp_path / "cache"),
        tmp_path / "campaign",
        workers=workers,
    )


def _run(tmp_path, jobs=1):
    campaign = Campaign(
        "capacity[test]",
        capacity_steps(_LINKS, duration_s=4.0),
        tmp_path / "campaign",
    )
    context = _context(tmp_path)
    campaign.run(context, jobs=jobs)
    payloads = {
        links: context.read_output(f"capacity@{links}")
        for links in _LINKS
    }
    return payloads, context.read_output("report")


class TestCapacitySteps:
    def test_serial_and_parallel_runs_are_byte_identical(
        self, tmp_path
    ):
        serial, serial_report = _run(tmp_path / "serial", jobs=1)
        parallel, parallel_report = _run(tmp_path / "parallel", jobs=2)
        assert serial == parallel
        assert serial_report == parallel_report

    def test_report_carries_sla_summary_and_curve(self, tmp_path):
        _, report = _run(tmp_path)
        # The nightly CI sentinel plus the figure headline.
        assert f"SLA summary — {max(_LINKS)} link(s)" in report
        assert "Capacity curve —" in report
        assert "sustained capacity:" in report

    def test_payloads_are_valid_step_json(self, tmp_path):
        payloads, _ = _run(tmp_path)
        for links, raw in payloads.items():
            payload = json.loads(raw)
            assert payload["links"] == links
            assert payload["metrics"]["classes"]

    def test_empty_link_counts_raise(self):
        with pytest.raises(ConfigurationError):
            capacity_steps(())


class TestGridWiring:
    def test_capacity_axis_aliases_stream_links(self):
        assert AXIS_FIELDS["capacity"] == "stream_links"
        assert AXIS_FIELDS["traffic"] == "traffic"
        assert AXIS_FIELDS["qos"] == "qos"

    def test_capacity_smoke_grid_expands(self):
        spec = get_grid("capacity-smoke")
        points = spec.expand()
        assert len(points) == spec.num_points
        links = {p.scenario.stream_links for p in points}
        assert links == {16, 64, 128}
        assert {p.scenario.qos for p in points} == {"triple"}
        assert {p.scenario.traffic for p in points} == {
            "periodic:10",
            "mixed",
        }


class TestScenarioSchema:
    def test_traffic_and_qos_have_parameters(self):
        names = [p.name for p in SCENARIO_PARAMETERS]
        assert "traffic" in names and "qos" in names

    def test_bad_traffic_fails_validation(self):
        with pytest.raises(ConfigurationError, match="traffic"):
            spec_from_scenario(
                Scenario(
                    name="bad-traffic",
                    description="x",
                    base="tiny",
                    traffic="warp:10",
                )
            ).validate()

    def test_bad_qos_fails_validation(self):
        with pytest.raises(ConfigurationError, match="qos"):
            spec_from_scenario(
                Scenario(
                    name="bad-qos",
                    description="x",
                    base="tiny",
                    qos="platinum",
                )
            ).validate()

    def test_defaults_stay_out_of_resolve(self):
        # Stream-only fields: the dataset configuration (and with it
        # every cache key) must not depend on traffic/qos.
        base = get_scenario("stream-smoke")
        import dataclasses

        variant = dataclasses.replace(
            base, name="qos-variant", traffic="mixed", qos="triple"
        )
        assert variant.resolve() == base.resolve()
