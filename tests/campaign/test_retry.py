"""Retry/timeout/quarantine semantics of the self-healing executor.

Pins the failure-handling contract of :meth:`Campaign.run`: transient
failures re-attempt on a deterministic backoff schedule with every
attempt journaled into the manifest, permanent failures never retry,
hung workers are killed at the step timeout and requeued, and
quarantined steps fence off their dependents while independent DAG
branches (and ``run_on_partial`` reports) still complete.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.campaign import (
    Campaign,
    CampaignContext,
    CampaignStep,
    DatasetCache,
    RetryPolicy,
)
from repro.campaign.manifest import (
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_QUARANTINED,
)
from repro.config import SimulationConfig
from repro.errors import ConfigurationError, InjectedIOError


def _campaign(tmp_path, steps, name="retry-test"):
    directory = tmp_path / "campaign"
    campaign = Campaign(name, steps, directory)
    context = CampaignContext(
        SimulationConfig.tiny(),
        DatasetCache(tmp_path / "cache"),
        directory,
    )
    return campaign, context


#: Zero-backoff policy for fast tests of the retry *logic*.
_FAST = RetryPolicy(max_attempts=3, backoff_base_s=0.0)


# Module-level worker bodies (picklable; flag files make the first
# attempt fail and later attempts succeed, like a real transient).
def _fail_once_worker(flag_path: str, payload: str) -> str:
    flag = Path(flag_path)
    if not flag.exists():
        flag.write_text("attempted")
        raise InjectedIOError("first attempt fails")
    return payload


def _hang_once_worker(flag_path: str, payload: str) -> str:
    flag = Path(flag_path)
    if not flag.exists():
        flag.write_text("hung")
        time.sleep(120.0)
    return payload


def _crash_once_worker(flag_path: str, payload: str) -> str:
    flag = Path(flag_path)
    if not flag.exists():
        flag.write_text("crashed")
        os._exit(9)
    return payload


def _sleep_forever(seconds: float) -> str:
    time.sleep(seconds)
    return "never"


def _echo(payload: str) -> str:
    return payload


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError, match="timeout_s"):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ConfigurationError, match="backoff"):
            RetryPolicy(backoff_base_s=-1.0)

    def test_backoff_deterministic_jittered_bounded(self):
        policy = RetryPolicy()
        first = policy.backoff_s("eval@6.0", 1)
        assert first == policy.backoff_s("eval@6.0", 1)
        assert 0.5 * policy.backoff_base_s <= first
        assert first < 1.5 * policy.backoff_base_s
        # Exponential growth, capped by backoff_max_s (plus jitter).
        assert policy.backoff_s("eval@6.0", 50) <= 1.5 * policy.backoff_max_s

    def test_should_retry_only_transient_within_budget(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(InjectedIOError("x"), 1) is True
        assert policy.should_retry(InjectedIOError("x"), 2) is False
        assert policy.should_retry(ConfigurationError("x"), 1) is False


class TestTransientRetry:
    def test_transient_failure_succeeds_on_second_attempt(self, tmp_path):
        calls = {"n": 0}

        def flaky(ctx):
            calls["n"] += 1
            if calls["n"] == 1:
                raise InjectedIOError("transient glitch")
            return "ok"

        campaign, context = _campaign(
            tmp_path, [CampaignStep("flaky", "flaky step", flaky)]
        )
        result = campaign.run(context, retry=_FAST)

        assert calls["n"] == 2
        assert result.executed == ["flaky"]
        assert result.retried == 1
        assert context.read_output("flaky") == "ok"
        assert campaign.manifest.status("flaky") == STATUS_DONE
        attempts = campaign.manifest.attempts("flaky")
        assert len(attempts) == 1
        assert attempts[0]["attempt"] == 1
        assert attempts[0]["action"] == "retry"
        assert attempts[0]["transient"] is True
        assert attempts[0]["backoff_s"] >= 0.0
        assert "InjectedIOError" in attempts[0]["error"]

    def test_exhausted_budget_quarantines(self, tmp_path):
        calls = {"n": 0}

        def doomed(ctx):
            calls["n"] += 1
            raise InjectedIOError("always transient")

        campaign, context = _campaign(
            tmp_path, [CampaignStep("doomed", "never succeeds", doomed)]
        )
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        result = campaign.run(context, retry=policy, quarantine=True)

        assert calls["n"] == 2
        assert result.retried == 1
        assert result.quarantined == ["doomed"]
        actions = [
            entry["action"]
            for entry in campaign.manifest.attempts("doomed")
        ]
        assert actions == ["retry", "quarantine"]
        assert campaign.manifest.status("doomed") == STATUS_QUARANTINED


class TestPermanentFailure:
    def test_raises_without_quarantine(self, tmp_path):
        calls = {"n": 0}

        def broken(ctx):
            calls["n"] += 1
            raise ConfigurationError("permanently misconfigured")

        campaign, context = _campaign(
            tmp_path, [CampaignStep("broken", "always fails", broken)]
        )
        with pytest.raises(ConfigurationError, match="misconfigured"):
            campaign.run(context, retry=_FAST)
        assert calls["n"] == 1  # permanent: no retry burned
        assert campaign.manifest.status("broken") == STATUS_FAILED
        attempts = campaign.manifest.attempts("broken")
        assert [entry["action"] for entry in attempts] == ["fail"]
        assert attempts[0]["transient"] is False

    def test_quarantines_without_retry(self, tmp_path):
        calls = {"n": 0}

        def broken(ctx):
            calls["n"] += 1
            raise ConfigurationError("permanently misconfigured")

        campaign, context = _campaign(
            tmp_path, [CampaignStep("broken", "always fails", broken)]
        )
        result = campaign.run(context, retry=_FAST, quarantine=True)
        assert calls["n"] == 1
        assert result.retried == 0
        assert result.quarantined == ["broken"]
        assert context.quarantined == {"broken"}


class TestQuarantineCascade:
    def _steps(self, flag: Path):
        def bad(ctx):
            if not flag.exists():
                raise ConfigurationError("still broken")
            return "healed"

        return [
            CampaignStep("bad", "fails until healed", bad),
            CampaignStep(
                "child", "needs bad", lambda ctx: "child", ("bad",)
            ),
            CampaignStep("other", "independent", lambda ctx: "other"),
            CampaignStep(
                "report",
                "partial-tolerant summary",
                lambda ctx: "survivors: "
                + ", ".join(
                    sorted(
                        {"bad", "child", "other"} - ctx.quarantined
                    )
                ),
                ("bad", "child", "other"),
                run_on_partial=True,
            ),
        ]

    def test_dependents_fenced_independent_branch_continues(
        self, tmp_path
    ):
        flag = tmp_path / "healed"
        campaign, context = _campaign(tmp_path, self._steps(flag))
        result = campaign.run(context, retry=_FAST, quarantine=True)

        assert result.quarantined == ["bad", "child"]
        assert "other" in result.executed
        assert "report" in result.executed
        assert context.read_output("report") == "survivors: other"
        assert campaign.manifest.status("child") == STATUS_QUARANTINED
        assert (
            "dependency quarantined: bad"
            in campaign.manifest.steps["child"]["detail"]
        )
        # The partial report is journaled done, flagged for re-run.
        record = campaign.manifest.steps["report"]
        assert record["status"] == STATUS_DONE
        assert record["detail"].startswith("partial:")

    def test_partial_report_rebuilt_after_healing(self, tmp_path):
        flag = tmp_path / "healed"
        campaign, context = _campaign(tmp_path, self._steps(flag))
        campaign.run(context, retry=_FAST, quarantine=True)

        flag.write_text("fixed")  # heal the root cause
        fresh = CampaignContext(
            context.config, context.cache, context.directory
        )
        result = campaign.run(fresh, retry=_FAST, quarantine=True)

        # Quarantined steps and the partial report re-run; the healthy
        # branch resumes from the manifest.
        assert set(result.executed) == {"bad", "child", "report"}
        assert result.skipped == ["other"]
        assert result.quarantined == []
        assert fresh.read_output("report") == (
            "survivors: bad, child, other"
        )
        assert campaign.manifest.steps["report"]["detail"] == ""


class TestSupervisedWorkers:
    def test_timeout_kills_hung_worker_and_requeues(self, tmp_path):
        flag = tmp_path / "hung-once"
        step = CampaignStep(
            "slow",
            "hangs on the first attempt",
            lambda ctx: _hang_once_worker(str(flag), "done"),
            worker=lambda ctx: (
                _hang_once_worker,
                {"flag_path": str(flag), "payload": "done"},
            ),
        )
        campaign, context = _campaign(tmp_path, [step])
        policy = RetryPolicy(
            max_attempts=2, backoff_base_s=0.0, timeout_s=1.0
        )
        start = time.monotonic()
        result = campaign.run(context, retry=policy)
        elapsed = time.monotonic() - start

        assert result.executed == ["slow"]
        assert result.retried == 1
        assert context.read_output("slow") == "done"
        assert elapsed < 60.0  # the hung attempt did not run to sleep(120)
        attempts = campaign.manifest.attempts("slow")
        assert len(attempts) == 1
        assert "StepTimeoutError" in attempts[0]["error"]
        assert attempts[0]["action"] == "retry"

    def test_timeout_budget_exhausts_to_quarantine(self, tmp_path):
        step = CampaignStep(
            "wedged",
            "hangs on every attempt",
            lambda ctx: "unused",
            worker=lambda ctx: (
                _sleep_forever,
                {"seconds": 120.0},
            ),
        )
        campaign, context = _campaign(tmp_path, [step])
        policy = RetryPolicy(
            max_attempts=2, backoff_base_s=0.0, timeout_s=0.5
        )
        result = campaign.run(context, retry=policy, quarantine=True)

        assert result.quarantined == ["wedged"]
        actions = [
            entry["action"]
            for entry in campaign.manifest.attempts("wedged")
        ]
        assert actions == ["retry", "quarantine"]

    def test_worker_crash_retried_in_parallel_run(self, tmp_path):
        flag = tmp_path / "crashed-once"
        steps = [
            CampaignStep(
                f"w{i}",
                "worker step",
                lambda ctx: "inline",
                worker=lambda ctx, i=i: (
                    (_crash_once_worker, {
                        "flag_path": str(flag),
                        "payload": "ok",
                    })
                    if i == 0
                    else (_echo, {"payload": "fine"})
                ),
            )
            for i in range(2)
        ]
        campaign, context = _campaign(tmp_path, steps)
        result = campaign.run(context, jobs=2, retry=_FAST)

        assert sorted(result.executed) == ["w0", "w1"]
        assert result.retried == 1
        assert context.read_output("w0") == "ok"
        assert context.read_output("w1") == "fine"
        attempts = campaign.manifest.attempts("w0")
        assert len(attempts) == 1
        assert "WorkerCrashError" in attempts[0]["error"]
