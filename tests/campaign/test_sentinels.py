"""Pin the CI-grepped sentinel strings through the facade migration.

Nightly CI greps exact sentinel lines out of stdout ("100% cache
hits", "self-healing: ...", "cache corruption detected") and
byte-diffs serial-vs-parallel capacity logs.  The sentinel text now
lives in :mod:`repro.api.facade` — the summary assembly every CLI
subcommand and every ``repro serve`` worker shares — and must not
move or reformat a single character: this module pins each sentinel
at its source site and proves the default log level emits them
verbatim on stdout.
"""

from __future__ import annotations

import inspect
import re

import pytest

from repro.api import facade as facade_module
from repro.campaign import cache as cache_module
from repro.campaign import cli as cli_module
from repro.campaign import results as results_module
from repro.campaign import runner as runner_module
from repro.obs import log
from repro.serve import daemon as daemon_module
from repro.serve import queue as queue_module

#: (module, sentinel fragment) pairs the nightly jobs grep for.
SENTINELS = [
    (facade_module, "no measurement sets regenerated (100% cache hits)"),
    (facade_module, "no models retrained (100% checkpoint hits)"),
    (facade_module, "step attempt(s) retried, "),
    (facade_module, "self-healing: "),
    (facade_module, "fault plan {plan.name!r} armed: "),
    (facade_module, " derived scenario(s) over "),
    (facade_module, " executed, "),
    (facade_module, " resumed from manifest "),
    (facade_module, " modeled point(s) over "),
    (facade_module, " job(s); no datasets or checkpoints touched"),
    (cache_module, "warning: cache corruption detected in "),
    (results_module, "warning: corrupt grid record "),
]

#: Modules whose output must flow through the logger, never print().
ROUTED_MODULES = [
    cli_module,
    facade_module,
    cache_module,
    results_module,
    runner_module,
    daemon_module,
    queue_module,
]


class TestSentinelSources:
    @pytest.mark.parametrize(
        "module, sentinel",
        SENTINELS,
        ids=[sentinel.strip() for _, sentinel in SENTINELS],
    )
    def test_sentinel_still_present(self, module, sentinel):
        assert sentinel in inspect.getsource(module)

    @pytest.mark.parametrize(
        "module",
        ROUTED_MODULES,
        ids=[module.__name__ for module in ROUTED_MODULES],
    )
    def test_no_bare_print_calls_remain(self, module):
        source = inspect.getsource(module)
        # `fingerprint(` must not count; only real print() call sites.
        assert re.search(r"(?<![\w.])print\(", source) is None

    def test_cli_no_longer_owns_sentinel_text(self):
        """The CLI is a shell: summary text belongs to the facade."""
        source = inspect.getsource(cli_module)
        assert "100% cache hits" not in source
        assert "self-healing: " not in source


class TestSentinelEmission:
    def test_default_level_emits_sentinels_byte_exact(self, capsys):
        log.reset()
        sentinels = [
            "no measurement sets regenerated (100% cache hits)",
            "no models retrained (100% checkpoint hits)",
            "self-healing: 2 step attempt(s) retried, "
            "1 step(s) quarantined: point@x",
        ]
        for line in sentinels:
            log.info(line)
        log.warning("warning: cache corruption detected in set_0003.npz")
        out = capsys.readouterr().out
        assert out == (
            "\n".join(sentinels)
            + "\nwarning: cache corruption detected in set_0003.npz\n"
        )

    def test_self_healing_lines_when_plan_armed(self):
        class _Result:
            retried = 0
            quarantined: list = []

        lines = facade_module.self_healing_lines(_Result(), plan=object())
        assert lines == [
            "self-healing: 0 step attempt(s) retried, "
            "0 step(s) quarantined"
        ]

    def test_self_healing_lines_empty_on_clean_unarmed_run(self):
        class _Result:
            retried = 0
            quarantined: list = []

        assert facade_module.self_healing_lines(_Result(), plan=None) == []

    def test_self_healing_lines_name_quarantined_steps(self):
        class _Result:
            retried = 2
            quarantined = ["point@x", "point@y"]

        assert facade_module.self_healing_lines(_Result(), plan=None) == [
            "self-healing: 2 step attempt(s) retried, "
            "2 step(s) quarantined: point@x, point@y"
        ]
