"""Pin the CI-grepped sentinel strings through the logging migration.

Nightly CI greps exact sentinel lines out of stdout ("100% cache
hits", "self-healing: ...", "cache corruption detected") and
byte-diffs serial-vs-parallel capacity logs.  Routing every bare
``print()`` through ``repro.obs.log`` must not move or reformat a
single one of them: this module pins each sentinel at its source site
and proves the default log level emits them verbatim on stdout.
"""

from __future__ import annotations

import inspect
import re

import pytest

from repro.campaign import cache as cache_module
from repro.campaign import cli as cli_module
from repro.campaign import results as results_module
from repro.campaign import runner as runner_module
from repro.obs import log

#: (module, sentinel fragment) pairs the nightly jobs grep for.
SENTINELS = [
    (cli_module, "no measurement sets regenerated (100% cache hits)"),
    (cli_module, "no models retrained (100% checkpoint hits)"),
    (cli_module, "step attempt(s) retried, "),
    (cli_module, "self-healing: "),
    (cli_module, "fault plan {plan.name!r} armed: "),
    (cli_module, " derived scenario(s) over "),
    (cli_module, " executed, "),
    (cli_module, " resumed from manifest "),
    (cli_module, " modeled point(s) over "),
    (cli_module, " job(s); no datasets or checkpoints touched"),
    (cache_module, "warning: cache corruption detected in "),
    (results_module, "warning: corrupt grid record "),
]

#: Modules whose output must flow through the logger, never print().
ROUTED_MODULES = [
    cli_module,
    cache_module,
    results_module,
    runner_module,
]


class TestSentinelSources:
    @pytest.mark.parametrize(
        "module, sentinel",
        SENTINELS,
        ids=[sentinel.strip() for _, sentinel in SENTINELS],
    )
    def test_sentinel_still_present(self, module, sentinel):
        assert sentinel in inspect.getsource(module)

    @pytest.mark.parametrize(
        "module",
        ROUTED_MODULES,
        ids=[module.__name__ for module in ROUTED_MODULES],
    )
    def test_no_bare_print_calls_remain(self, module):
        source = inspect.getsource(module)
        # `fingerprint(` must not count; only real print() call sites.
        assert re.search(r"(?<![\w.])print\(", source) is None


class TestSentinelEmission:
    def test_default_level_emits_sentinels_byte_exact(self, capsys):
        log.reset()
        sentinels = [
            "no measurement sets regenerated (100% cache hits)",
            "no models retrained (100% checkpoint hits)",
            "self-healing: 2 step attempt(s) retried, "
            "1 step(s) quarantined: point@x",
        ]
        for line in sentinels:
            log.info(line)
        log.warning("warning: cache corruption detected in set_0003.npz")
        out = capsys.readouterr().out
        assert out == (
            "\n".join(sentinels)
            + "\nwarning: cache corruption detected in set_0003.npz\n"
        )

    def test_self_healing_summary_prints_when_plan_armed(self, capsys):
        class _Result:
            retried = 0
            quarantined: list = []

        cli_module._self_healing_summary(_Result(), plan=object())
        assert capsys.readouterr().out == (
            "self-healing: 0 step attempt(s) retried, "
            "0 step(s) quarantined\n"
        )

    def test_self_healing_summary_silent_on_clean_unarmed_run(
        self, capsys
    ):
        class _Result:
            retried = 0
            quarantined: list = []

        cli_module._self_healing_summary(_Result(), plan=None)
        assert capsys.readouterr().out == ""
