"""The determinism firewall: tracing may never change results.

Runs the same grid untraced, traced, and traced with ``jobs=2`` and
byte-compares everything semantic — per-point records, the aggregate
``results.json``, the rendered report, and the dataset-cache keys.
Telemetry is a wall-clock side-channel: it lands in ``trace/`` and
``metrics.*`` beside the manifest, never inside payloads.

Also pins the observability acceptance criteria: the merged journal's
wall-time accounting over a serial run and the ``repro trace`` CLI's
clean handling of missing/empty journals.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    Campaign,
    CampaignContext,
    DatasetCache,
    GridSpec,
    ModelCheckpointRegistry,
    grid_steps,
)
from repro.campaign.cli import main
from repro.campaign.scenario import get_scenario
from repro.obs import analysis, trace


@pytest.fixture(scope="module")
def spec() -> GridSpec:
    return GridSpec(
        name="firewall-grid",
        description="tracing on/off determinism fixture",
        base="smoke",
        axes=(("snr_db", (6.0, 12.0)),),
    )


def _run_grid(
    spec: GridSpec, root, jobs: int, traced: bool
) -> CampaignContext:
    directory = root / "campaign"
    campaign = Campaign(
        f"grid[{spec.name}]",
        grid_steps(spec, suite="quick"),
        directory,
    )
    context = CampaignContext(
        get_scenario(spec.base).resolve(),
        DatasetCache(root / "cache"),
        directory,
        checkpoints=ModelCheckpointRegistry(root / "models"),
    )
    if traced:
        trace.arm(directory / "trace")
    try:
        result = campaign.run(context, jobs=jobs)
    finally:
        if traced:
            trace.disarm()
    assert len(result.executed) == spec.num_points + 1
    return context


def _cache_keys(root) -> list[str]:
    cache_root = root / "cache"
    return sorted(
        path.name for path in cache_root.iterdir() if path.is_dir()
    )


class TestFirewall:
    def test_traced_runs_byte_identical_to_untraced(
        self, tmp_path, spec
    ):
        plain = _run_grid(spec, tmp_path / "off", jobs=1, traced=False)
        traced = _run_grid(spec, tmp_path / "on", jobs=1, traced=True)
        traced2 = _run_grid(spec, tmp_path / "on2", jobs=2, traced=True)

        # Dataset-cache keys: tracing must never leak into fingerprints.
        assert _cache_keys(tmp_path / "off") == _cache_keys(
            tmp_path / "on"
        )
        assert _cache_keys(tmp_path / "off") == _cache_keys(
            tmp_path / "on2"
        )

        # Aggregate, per-point payloads, and rendered report.
        aggregates = [
            (
                context.directory / "results" / "results.json"
            ).read_bytes()
            for context in (plain, traced, traced2)
        ]
        assert aggregates[0] == aggregates[1] == aggregates[2]
        for point in spec.expand():
            step_id = f"point@{point.label}"
            assert plain.read_output(step_id) == traced.read_output(
                step_id
            )
            assert plain.read_output(step_id) == traced2.read_output(
                step_id
            )
        assert plain.read_output("report") == traced.read_output(
            "report"
        )
        assert plain.read_output("report") == traced2.read_output(
            "report"
        )

        # The traced runs actually produced telemetry...
        for context in (traced, traced2):
            journal = context.directory / "trace" / "trace.jsonl"
            records = analysis.load_journal(journal)
            roots = analysis.root_spans(records)
            assert roots and roots[-1]["name"] == "campaign.run"
            assert (context.directory / "metrics.prom").exists()
        # ...and the untraced one produced no journal (metrics export
        # is unconditional — it reads counters, not clocks armed).
        assert not (plain.directory / "trace").exists()

        # Acceptance: the serial traced run's direct-children breakdown
        # accounts for >= 95% of the campaign's wall time.
        records = analysis.load_journal(
            traced.directory / "trace" / "trace.jsonl"
        )
        accounting = analysis.wall_accounting(records)
        assert accounting["wall_s"] > 0.0
        assert accounting["fraction"] >= 0.95
        labels = [step["name"] for step in accounting["steps"]]
        assert labels.count("step.attempt") == len(labels)

    def test_metrics_exported_beside_manifest(self, tmp_path, spec):
        context = _run_grid(
            spec, tmp_path / "metrics", jobs=1, traced=False
        )
        snapshot = json.loads(
            (context.directory / "metrics.json").read_text()
        )
        executed = snapshot["repro_campaign_steps_executed"]
        assert executed == {
            "type": "counter",
            "value": spec.num_points + 1,
        }
        prom = (context.directory / "metrics.prom").read_text()
        assert "# TYPE repro_campaign_steps_executed counter" in prom
        # Metrics live beside the manifest, never inside the payload
        # directories the determinism contract covers.
        assert not (
            context.directory / "results" / "metrics.json"
        ).exists()
        assert not (
            context.directory / "outputs" / "metrics.json"
        ).exists()


class TestTraceCli:
    def test_summary_without_any_journal_exits_cleanly(
        self, tmp_path, capsys
    ):
        code = main(
            ["trace", "summary", "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        assert "no trace journal" in capsys.readouterr().out

    def test_summary_on_missing_journal_file(self, tmp_path, capsys):
        code = main(
            [
                "trace",
                "summary",
                "--journal",
                str(tmp_path / "absent.jsonl"),
            ]
        )
        assert code == 0
        assert "empty" in capsys.readouterr().out

    def test_summary_and_export_on_synthetic_journal(
        self, tmp_path, capsys
    ):
        journal_dir = tmp_path / "campaigns" / "grid-x-abc" / "trace"
        journal_dir.mkdir(parents=True)
        journal = journal_dir / "trace.jsonl"
        journal.write_text(
            json.dumps(
                {
                    "kind": "span",
                    "name": "campaign.run",
                    "id": "1:1",
                    "parent": None,
                    "pid": 1,
                    "start": 5.0,
                    "dur": 2.0,
                    "attrs": {},
                }
            )
            + "\n"
        )
        assert (
            main(["trace", "summary", "--cache-dir", str(tmp_path)])
            == 0
        )
        assert "campaign.run" in capsys.readouterr().out
        assert (
            main(
                [
                    "trace",
                    "export",
                    "--chrome",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        exported = json.loads(
            (journal_dir / "trace.chrome.json").read_text()
        )
        assert exported["traceEvents"][0]["name"] == "campaign.run"

    def test_export_without_chrome_flag_is_an_error(
        self, tmp_path, capsys
    ):
        journal = tmp_path / "trace.jsonl"
        journal.write_text("")
        code = main(["trace", "export", "--journal", str(journal)])
        assert code == 2
        assert "only --chrome" in capsys.readouterr().err
