"""Parallel wavefront executor: scheduling, journaling, kill-resume."""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign import (
    Campaign,
    CampaignContext,
    CampaignStep,
    DatasetCache,
)
from repro.campaign.manifest import (
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_RUNNING,
)
from repro.config import SimulationConfig


# Worker bodies must be module-level so the process pool can pickle
# them by reference.
def _double_task(value: int) -> str:
    """Trivial picklable worker payload."""
    return json.dumps({"value": value * 2})


def _flaky_task(flag_path: str) -> str:
    """Fails until the flag file exists (simulates a mid-run crash)."""
    if not os.path.exists(flag_path):
        raise RuntimeError("simulated worker crash")
    return "recovered"


def _context(tmp_path) -> CampaignContext:
    return CampaignContext(
        SimulationConfig.tiny(),
        DatasetCache(tmp_path / "cache"),
        tmp_path / "campaign",
    )


def _fan_campaign(tmp_path, values=(1, 2, 3, 4)) -> Campaign:
    """N independent worker steps + an inline aggregation step."""
    steps = [
        CampaignStep(
            step_id=f"double@{v}",
            description=f"double {v}",
            run=lambda ctx, v=v: _double_task(v),
            worker=lambda ctx, v=v: (_double_task, {"value": v}),
        )
        for v in values
    ]

    def _run_total(ctx: CampaignContext) -> str:
        total = sum(
            json.loads(ctx.read_output(f"double@{v}"))["value"]
            for v in values
        )
        return json.dumps({"total": total})

    steps.append(
        CampaignStep(
            step_id="total",
            description="sum the doubles",
            run=_run_total,
            depends_on=tuple(f"double@{v}" for v in values),
        )
    )
    return Campaign("fan", steps, tmp_path / "campaign")


class TestWavefront:
    def test_worker_steps_fan_out_and_inline_report_follows(
        self, tmp_path
    ):
        campaign = _fan_campaign(tmp_path)
        context = _context(tmp_path)
        result = campaign.run(context, jobs=4)
        assert len(result.executed) == 5
        assert json.loads(context.read_output("total")) == {"total": 20}
        for step in campaign.steps:
            assert campaign.manifest.status(step.step_id) == STATUS_DONE

    def test_parallel_outputs_match_serial(self, tmp_path):
        serial_ctx = _context(tmp_path / "serial")
        _fan_campaign(tmp_path / "serial").run(serial_ctx, jobs=1)
        parallel_ctx = _context(tmp_path / "parallel")
        _fan_campaign(tmp_path / "parallel").run(parallel_ctx, jobs=3)
        for v in (1, 2, 3, 4):
            assert serial_ctx.read_output(
                f"double@{v}"
            ) == parallel_ctx.read_output(f"double@{v}")
        assert serial_ctx.read_output("total") == parallel_ctx.read_output(
            "total"
        )

    def test_inline_only_dag_runs_under_jobs(self, tmp_path):
        """Steps without workers fall back to inline wavefront order."""
        trace: list[str] = []
        steps = [
            CampaignStep(
                step_id="a",
                description="a",
                run=lambda ctx: trace.append("a") or "a",
            ),
            CampaignStep(
                step_id="b",
                description="b",
                run=lambda ctx: trace.append("b") or "b",
                depends_on=("a",),
            ),
        ]
        campaign = Campaign("inline", steps, tmp_path / "campaign")
        result = campaign.run(_context(tmp_path), jobs=4)
        assert trace == ["a", "b"]
        assert result.executed == ["a", "b"]

    def test_resume_skips_completed_steps(self, tmp_path):
        context = _context(tmp_path)
        _fan_campaign(tmp_path).run(context, jobs=4)
        rerun = _fan_campaign(tmp_path).run(context, jobs=4)
        assert rerun.executed == []
        assert len(rerun.skipped) == 5


class TestFailure:
    def _flaky_campaign(self, tmp_path, flag) -> Campaign:
        steps = [
            CampaignStep(
                step_id="ok",
                description="healthy worker",
                run=lambda ctx: _double_task(5),
                worker=lambda ctx: (_double_task, {"value": 5}),
            ),
            CampaignStep(
                step_id="flaky",
                description="crashing worker",
                run=lambda ctx: _flaky_task(str(flag)),
                worker=lambda ctx: (_flaky_task, {"flag_path": str(flag)}),
            ),
            CampaignStep(
                step_id="after",
                description="depends on the crash",
                run=lambda ctx: "after",
                depends_on=("flaky",),
            ),
        ]
        return Campaign("flaky", steps, tmp_path / "campaign")

    def test_worker_failure_journals_failed_and_resumes(self, tmp_path):
        flag = tmp_path / "fixed.flag"
        context = _context(tmp_path)
        campaign = self._flaky_campaign(tmp_path, flag)
        with pytest.raises(RuntimeError, match="simulated worker crash"):
            campaign.run(context, jobs=2)
        assert campaign.manifest.status("flaky") == STATUS_FAILED
        assert "simulated worker crash" in campaign.manifest.steps[
            "flaky"
        ]["detail"]
        # The dependent step never started.
        assert not context.output_path("after").exists()

        # "Fix the bug" and resume: only unfinished steps re-execute.
        flag.write_text("fixed")
        resumed = self._flaky_campaign(tmp_path, flag)
        result = resumed.run(context, jobs=2)
        assert "flaky" in result.executed
        assert "after" in result.executed
        assert "ok" in result.skipped or "ok" in result.executed
        assert context.read_output("flaky") == "recovered"

    def test_worker_factory_failure_is_journaled(self, tmp_path):
        """A crash in the scheduler-side job factory marks 'failed'."""

        def _bad_factory(ctx):
            raise RuntimeError("factory blew up")

        steps = [
            CampaignStep(
                step_id="bad",
                description="factory crash",
                run=lambda ctx: "never",
                worker=_bad_factory,
            )
        ]
        campaign = Campaign("factory", steps, tmp_path / "campaign")
        with pytest.raises(RuntimeError, match="factory blew up"):
            campaign.run(_context(tmp_path), jobs=2)
        assert campaign.manifest.status("bad") == STATUS_FAILED
        assert "factory blew up" in campaign.manifest.steps["bad"][
            "detail"
        ]

    def test_kill_leaves_running_steps_reexecutable(self, tmp_path):
        """A step marked running (killed mid-flight) re-runs on resume."""
        context = _context(tmp_path)
        campaign = _fan_campaign(tmp_path)
        campaign.run(context, jobs=2)
        # Simulate a kill that left one step 'running' with its output
        # missing: the resume path must re-execute exactly that step.
        campaign.manifest.mark("double@3", STATUS_RUNNING)
        context.output_path("double@3").unlink()
        resumed = _fan_campaign(tmp_path)
        result = resumed.run(context, jobs=2)
        assert result.executed == ["double@3"]
        assert json.loads(context.read_output("double@3")) == {"value": 6}
