"""ResultsStore: coordinate-keyed records and deterministic aggregates."""

from __future__ import annotations

import pytest

from repro.campaign import ResultsStore, coords_key
from repro.errors import ConfigurationError


def test_coords_key_preserves_declared_order():
    assert (
        coords_key((("snr_db", "6"), ("seed", "0"))) == "snr_db=6,seed=0"
    )
    assert coords_key({"a": 1, "b": 2}) == "a=1,b=2"


def test_coords_key_rejects_empty():
    with pytest.raises(ConfigurationError):
        coords_key(())


def test_put_get_roundtrip(tmp_path):
    store = ResultsStore(tmp_path / "results")
    coords = (("snr_db", "6"), ("seed", "0"))
    record = {"per": {"Ground Truth": 0.0}, "scenario": "x"}
    store.put(coords, record)
    assert store.get(coords) == record


def test_get_missing_record_raises(tmp_path):
    store = ResultsStore(tmp_path)
    with pytest.raises(ConfigurationError, match="no grid record"):
        store.get((("seed", "0"),))


def test_records_sorted_by_coordinate_key(tmp_path):
    store = ResultsStore(tmp_path)
    # Write out of order; read back sorted.
    store.put((("seed", "1"),), {"v": 1})
    store.put((("seed", "0"),), {"v": 0})
    assert [key for key, _ in store.records()] == ["seed=0", "seed=1"]


def test_aggregate_bytes_independent_of_write_order(tmp_path):
    a = ResultsStore(tmp_path / "a")
    b = ResultsStore(tmp_path / "b")
    records = [
        ((("seed", str(i)),), {"per": {"GT": i / 7}}) for i in range(5)
    ]
    for coords, record in records:
        a.put(coords, record)
    for coords, record in reversed(records):
        b.put(coords, record)
    assert (
        a.write_aggregate().read_bytes()
        == b.write_aggregate().read_bytes()
    )


def test_aggregate_file_not_listed_as_record(tmp_path):
    store = ResultsStore(tmp_path)
    store.put((("seed", "0"),), {"v": 0})
    store.write_aggregate()
    assert len(store.records()) == 1


def test_stale_temp_files_ignored(tmp_path):
    """A crashed worker's in-flight temp file never pollutes records."""
    store = ResultsStore(tmp_path)
    store.put((("seed", "0"),), {"v": 0})
    (tmp_path / ".tmp_999_seed=1.json").write_text("{torn")
    assert [key for key, _ in store.records()] == ["seed=0"]


def test_corrupt_record_quarantined_not_fatal(tmp_path, capsys):
    """Garbage bytes in one record degrade to a missing point."""
    store = ResultsStore(tmp_path)
    store.put((("seed", "0"),), {"v": 0})
    store.put((("seed", "1"),), {"v": 1})
    bad = store.record_path((("seed", "1"),))
    bad.write_bytes(b"\x00\xffgarbage{{{not json")

    records = store.records()
    assert [key for key, _ in records] == ["seed=0"]
    assert not bad.exists()
    assert bad.with_name(f"{bad.name}.corrupt").exists()
    assert "quarantined" in capsys.readouterr().out


def test_get_of_corrupt_record_reports_absent(tmp_path):
    store = ResultsStore(tmp_path)
    store.put((("seed", "0"),), {"v": 0})
    store.record_path((("seed", "0"),)).write_bytes(b"{torn")
    with pytest.raises(ConfigurationError, match="no grid record"):
        store.get((("seed", "0"),))


def test_records_sweeps_dead_writers_tmp_litter(tmp_path):
    import os

    store = ResultsStore(tmp_path)
    store.put((("seed", "0"),), {"v": 0})
    dead = tmp_path / ".tmp_99999999_seed=1.json"
    dead.write_text("{torn")
    live = tmp_path / f".tmp_{os.getpid()}_seed=2.json"
    live.write_text("{inflight")

    assert [key for key, _ in store.records()] == ["seed=0"]
    assert not dead.exists()  # writer pid dead: swept
    assert live.exists()  # this process is alive: kept


def test_unsafe_coordinate_characters_sanitized(tmp_path):
    store = ResultsStore(tmp_path)
    path = store.record_path((("trajectory", "random-waypoint"),))
    assert path.parent == store.directory
    store.put((("trajectory", "random-waypoint"),), {"v": 1})
    assert store.get((("trajectory", "random-waypoint"),)) == {"v": 1}
