"""Model checkpoint registry: keying, hit/miss behavior, reproducibility."""

import dataclasses
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.campaign.models import (
    ModelCheckpointRegistry,
    model_fingerprint,
)
from repro.core import train_vvd
from repro.errors import ConfigurationError


class TestFingerprint:
    def test_repeatable(self, tiny_config):
        a = model_fingerprint(tiny_config, [0, 1], [2])
        b = model_fingerprint(tiny_config, [0, 1], [2])
        assert a == b
        assert len(a) == 16
        assert all(c in "0123456789abcdef" for c in a)

    def test_training_order_changes_key(self, tiny_config):
        """Samples concatenate in set order before the seeded shuffle,
        so a permuted split trains a different model — distinct key."""
        assert model_fingerprint(
            tiny_config, [1, 0], [2]
        ) != model_fingerprint(tiny_config, [0, 1], [2])

    def test_key_changes_with_vvd_config(self, tiny_config):
        changed = tiny_config.replace(
            vvd=dataclasses.replace(tiny_config.vvd, epochs=5)
        )
        assert model_fingerprint(
            tiny_config, [0, 1], [2]
        ) != model_fingerprint(changed, [0, 1], [2])

    def test_key_changes_with_dataset_key(self, tiny_config):
        changed = tiny_config.replace(seed=tiny_config.seed + 1)
        assert model_fingerprint(
            tiny_config, [0, 1], [2]
        ) != model_fingerprint(changed, [0, 1], [2])

    def test_key_changes_with_split(self, tiny_config):
        base = model_fingerprint(tiny_config, [0, 1], [2])
        assert base != model_fingerprint(tiny_config, [0, 3], [2])
        assert base != model_fingerprint(tiny_config, [0, 1], [3])

    def test_key_changes_with_horizon_and_seed(self, tiny_config):
        base = model_fingerprint(tiny_config, [0, 1], [2])
        assert base != model_fingerprint(
            tiny_config, [0, 1], [2], horizon_frames=1
        )
        assert base != model_fingerprint(tiny_config, [0, 1], [2], seed=8)

    def test_key_changes_with_engine(self, tiny_config):
        """Scalar- and batch-generated sets agree only to 1e-10, so a
        model trained on one must never be served for the other."""
        assert model_fingerprint(
            tiny_config, [0, 1], [2], engine="batch"
        ) != model_fingerprint(tiny_config, [0, 1], [2], engine="scalar")

    def test_stable_across_processes(self, tiny_config):
        """The key must not depend on interpreter state (no hash())."""
        local = model_fingerprint(tiny_config, [0, 1], [2])
        script = (
            "from repro.campaign.models import model_fingerprint\n"
            "from repro.config import SimulationConfig\n"
            "print(model_fingerprint("
            "SimulationConfig.tiny(), [0, 1], [2]), end='')\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert result.stdout == local


class TestLoadOrTrain:
    @pytest.fixture(scope="class")
    def split(self, tiny_dataset):
        return list(tiny_dataset[:2]), [tiny_dataset[2]]

    def test_miss_trains_then_hit_loads(
        self, tiny_config, split, tmp_path_factory
    ):
        root = tmp_path_factory.mktemp("registry")
        training, validation = split
        first = ModelCheckpointRegistry(root)
        trained = first.load_or_train(training, validation, tiny_config)
        assert first.stats.misses == 1
        assert first.stats.models_trained == 1

        # A fresh instance over the same root (a new process, in effect)
        # serves the checkpoint without retraining, bit-identically.
        second = ModelCheckpointRegistry(root)
        loaded = second.load_or_train(training, validation, tiny_config)
        assert second.stats.hits == 1
        assert second.stats.models_trained == 0
        rng = np.random.default_rng(5)
        rows, cols = trained.input_shape
        images = rng.uniform(0.0, 1.0, size=(3, rows, cols))
        assert np.array_equal(
            trained.predict_cir(images), loaded.predict_cir(images)
        )
        assert loaded.history.train_loss == trained.history.train_loss

    def test_force_retrains(self, tiny_config, split, tmp_path_factory):
        root = tmp_path_factory.mktemp("registry-force")
        training, validation = split
        registry = ModelCheckpointRegistry(root)
        registry.load_or_train(training, validation, tiny_config)
        registry.load_or_train(
            training, validation, tiny_config, force=True
        )
        assert registry.stats.models_trained == 2

    def test_engine_separates_checkpoints(
        self, tiny_config, split, tmp_path_factory
    ):
        """A batch-keyed checkpoint must not satisfy a scalar lookup."""
        root = tmp_path_factory.mktemp("registry-engine")
        training, validation = split
        registry = ModelCheckpointRegistry(root)
        registry.load_or_train(training, validation, tiny_config)
        registry.load_or_train(
            training, validation, tiny_config, engine="scalar"
        )
        assert registry.stats.models_trained == 2
        assert registry.stats.hits == 0

    def test_entries_and_invalidate(
        self, tiny_config, split, tmp_path_factory
    ):
        root = tmp_path_factory.mktemp("registry-entries")
        training, validation = split
        registry = ModelCheckpointRegistry(root)
        registry.load_or_train(training, validation, tiny_config)
        entries = registry.entries()
        assert len(entries) == 1
        assert entries[0].complete
        assert registry.invalidate(entries[0].key) == 1
        assert registry.entries() == []
        with pytest.raises(ConfigurationError):
            registry.invalidate("../escape")

    def test_load_unknown_key_raises(self, tiny_config, tmp_path):
        registry = ModelCheckpointRegistry(tmp_path)
        with pytest.raises(ConfigurationError):
            registry.load("0123456789abcdef", tiny_config)


class TestSeededReproducibility:
    def test_retrain_reproduces_training_history(
        self, tiny_config, tiny_dataset
    ):
        """Same sets + same seed -> identical TrainingHistory."""
        training = list(tiny_dataset[:2])
        validation = [tiny_dataset[2]]
        first = train_vvd(training, validation, tiny_config, seed=11)
        second = train_vvd(training, validation, tiny_config, seed=11)
        assert first.history.train_loss == second.history.train_loss
        assert first.history.val_loss == second.history.val_loss
        assert first.history.best_epoch == second.history.best_epoch
