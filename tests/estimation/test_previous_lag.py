"""Warm-up semantics of PreviousEstimation: legacy clamp vs strict lag.

For the first ``lag_packets`` packets of a set no estimate that old
exists.  The legacy behaviour (default, figure parity) clamps the source
index to 0 — at index 0 it silently serves the current packet's own
genie estimate.  ``strict_lag=True`` reports the technique honestly and
returns ``None`` (estimate unavailable) during warm-up.  Both modes are
pinned here so neither can drift silently.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.estimation import PreviousEstimation
from repro.estimation.base import PacketContext


def _ctx(measurement_set, index):
    return PacketContext(
        measurement_set=measurement_set,
        index=index,
        record=measurement_set.packets[index],
        received=np.empty(0),
        receiver=None,
    )


class TestLegacyClamp:
    def test_warmup_serves_younger_estimate(self, tiny_dataset):
        """Index 0 with lag 5 clamps to source 0: the packet's own
        genie estimate (the documented legacy quirk)."""
        measurement_set = tiny_dataset[0]
        estimator = PreviousEstimation(5)
        estimate = estimator.estimate(_ctx(measurement_set, 0))
        assert estimate is not None
        np.testing.assert_array_equal(
            estimate.taps, measurement_set.packets[0].h_ls_canonical
        )

    def test_partial_warmup_clamps_to_zero(self, tiny_dataset):
        """Index 3 with lag 5 still clamps to source 0 (a 300 ms-old
        estimate served as if it were 500 ms old)."""
        measurement_set = tiny_dataset[0]
        estimator = PreviousEstimation(5)
        estimate = estimator.estimate(_ctx(measurement_set, 3))
        np.testing.assert_array_equal(
            estimate.taps, measurement_set.packets[0].h_ls_canonical
        )

    def test_steady_state_serves_lagged_estimate(self, tiny_dataset):
        measurement_set = tiny_dataset[0]
        estimator = PreviousEstimation(5)
        estimate = estimator.estimate(_ctx(measurement_set, 8))
        np.testing.assert_array_equal(
            estimate.taps, measurement_set.packets[3].h_ls_canonical
        )
        assert estimate.needs_phase_alignment

    def test_default_is_legacy(self):
        assert PreviousEstimation(1).strict_lag is False


class TestStrictLag:
    def test_warmup_returns_none(self, tiny_dataset):
        measurement_set = tiny_dataset[0]
        estimator = PreviousEstimation(5, strict_lag=True)
        for index in range(5):
            assert estimator.estimate(_ctx(measurement_set, index)) is None

    def test_first_valid_index_serves_index_zero(self, tiny_dataset):
        measurement_set = tiny_dataset[0]
        estimator = PreviousEstimation(5, strict_lag=True)
        estimate = estimator.estimate(_ctx(measurement_set, 5))
        assert estimate is not None
        np.testing.assert_array_equal(
            estimate.taps, measurement_set.packets[0].h_ls_canonical
        )

    def test_steady_state_matches_legacy(self, tiny_dataset):
        """Past warm-up the two modes are identical."""
        measurement_set = tiny_dataset[0]
        legacy = PreviousEstimation(5)
        strict = PreviousEstimation(5, strict_lag=True)
        for index in range(5, measurement_set.num_packets):
            np.testing.assert_array_equal(
                legacy.estimate(_ctx(measurement_set, index)).taps,
                strict.estimate(_ctx(measurement_set, index)).taps,
            )

    def test_strict_name_is_distinct(self):
        assert PreviousEstimation(5).name == "500ms Previous"
        assert (
            PreviousEstimation(5, strict_lag=True).name
            == "500ms Previous (strict)"
        )

    def test_lag_validation_unchanged(self):
        with pytest.raises(ConfigurationError):
            PreviousEstimation(0, strict_lag=True)
