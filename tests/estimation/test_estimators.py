"""Tests for the baseline estimation techniques."""

import numpy as np
import pytest

from repro.dataset import rotating_set_combinations, synthesize_received
from repro.errors import NotFittedError, ShapeError
from repro.estimation import (
    CombinedEstimator,
    GroundTruth,
    KalmanEstimator,
    PreambleBased,
    PreambleGenie,
    PreviousEstimation,
    StandardDecoding,
    fit_ar_coefficients,
    yule_walker,
)
from repro.estimation.base import PacketContext


@pytest.fixture()
def ctx_factory(tiny_components, tiny_dataset):
    def make(set_index=0, packet_index=5):
        measurement_set = tiny_dataset[set_index]
        record = measurement_set.packets[packet_index]
        received = synthesize_received(tiny_components, record)
        return PacketContext(
            measurement_set=measurement_set,
            index=packet_index,
            record=record,
            received=received,
            receiver=tiny_components.receiver,
        )

    return make


class TestSimpleEstimators:
    def test_standard_returns_no_taps(self, ctx_factory):
        estimate = StandardDecoding().estimate(ctx_factory())
        assert estimate is not None
        assert estimate.taps is None

    def test_ground_truth_returns_packet_ls(self, ctx_factory):
        ctx = ctx_factory()
        estimate = GroundTruth().estimate(ctx)
        assert np.array_equal(estimate.taps, ctx.record.h_ls)
        assert not estimate.needs_phase_alignment

    def test_preamble_none_when_not_detected(self, ctx_factory, tiny_dataset):
        undetected = [
            (si, pi)
            for si, s in enumerate(tiny_dataset)
            for pi, p in enumerate(s.packets)
            if not p.preamble_detected
        ]
        estimator = PreambleBased()
        if undetected:
            si, pi = undetected[0]
            assert estimator.estimate(ctx_factory(si, pi)) is None

    def test_genie_always_estimates(self, ctx_factory):
        estimate = PreambleGenie().estimate(ctx_factory())
        assert estimate is not None
        assert estimate.taps is not None

    def test_previous_uses_lagged_record(self, ctx_factory, tiny_dataset):
        ctx = ctx_factory(0, 5)
        estimate = PreviousEstimation(1, 0.1).estimate(ctx)
        expected = tiny_dataset[0].packets[4].h_ls_canonical
        assert np.array_equal(estimate.taps, expected)
        assert estimate.needs_phase_alignment

    def test_previous_clamps_at_start(self, ctx_factory, tiny_dataset):
        ctx = ctx_factory(0, 0)
        estimate = PreviousEstimation(5, 0.1).estimate(ctx)
        assert np.array_equal(
            estimate.taps, tiny_dataset[0].packets[0].h_ls_canonical
        )

    def test_previous_name(self):
        assert PreviousEstimation(1, 0.1).name == "100ms Previous"
        assert PreviousEstimation(5, 0.1).name == "500ms Previous"

    def test_previous_rejects_zero_lag(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PreviousEstimation(0)


class TestYuleWalker:
    def test_recovers_ar1_coefficient(self, rng):
        phi_true = 0.85
        n = 20_000
        series = np.zeros(n, dtype=complex)
        noise = rng.normal(size=n) + 1j * rng.normal(size=n)
        for i in range(1, n):
            series[i] = phi_true * series[i - 1] + 0.1 * noise[i]
        phi, variance = yule_walker(series, 1)
        assert abs(phi[0] - phi_true) < 0.05
        assert variance > 0

    def test_constant_series_predicts_persistence(self):
        series = np.full(100, 2.0 + 1j)
        phi, variance = yule_walker(series, 3)
        assert phi[0] == pytest.approx(1.0)
        assert variance == 0.0

    def test_fit_matrix_shapes(self, rng):
        series = rng.normal(size=(200, 4)) + 1j * rng.normal(size=(200, 4))
        phi, noise = fit_ar_coefficients(series, 5)
        assert phi.shape == (4, 5)
        assert noise.shape == (4,)

    def test_rejects_short_series(self, rng):
        with pytest.raises(ShapeError):
            yule_walker(rng.normal(size=5), 10)

    def test_rejects_bad_order(self, rng):
        with pytest.raises(ShapeError):
            yule_walker(rng.normal(size=50), 0)


class TestKalman:
    def test_requires_prepare(self, ctx_factory):
        estimator = KalmanEstimator(3)
        with pytest.raises(NotFittedError):
            estimator.reset(None)

    def test_prepare_reset_estimate_cycle(
        self, ctx_factory, tiny_dataset, tiny_config
    ):
        estimator = KalmanEstimator(3)
        estimator.prepare(tiny_dataset[:2], tiny_dataset[2:3], tiny_config)
        estimator.reset(tiny_dataset[3])
        estimate = estimator.estimate(ctx_factory(3, 0))
        assert estimate.taps.shape == (tiny_config.channel.num_taps,)
        assert estimate.needs_phase_alignment

    def test_converges_to_tracked_channel(
        self, ctx_factory, tiny_dataset, tiny_config, tiny_components
    ):
        estimator = KalmanEstimator(3)
        estimator.prepare(tiny_dataset[:2], tiny_dataset[2:3], tiny_config)
        estimator.reset(tiny_dataset[3])
        measurement_set = tiny_dataset[3]
        errors = []
        for index, record in enumerate(measurement_set.packets):
            received = synthesize_received(tiny_components, record)
            ctx = PacketContext(
                measurement_set=measurement_set,
                index=index,
                record=record,
                received=received,
                receiver=tiny_components.receiver,
            )
            estimate = estimator.estimate(ctx)
            errors.append(
                np.mean(
                    np.abs(estimate.taps - record.h_ls_canonical) ** 2
                )
            )
            estimator.observe(ctx)
        # After convergence the tracker follows the channel closely.
        assert np.mean(errors[5:]) < np.mean(errors[:2])

    def test_variant_names(self):
        assert KalmanEstimator(1).name == "Kalman AR(1)"
        assert KalmanEstimator(20).name == "Kalman AR(20)"


class TestCombined:
    def test_uses_preamble_when_detected(
        self, ctx_factory, tiny_dataset, tiny_config
    ):
        fallback = KalmanEstimator(2)
        combined = CombinedEstimator(fallback)
        combined.prepare(tiny_dataset[:2], tiny_dataset[2:3], tiny_config)
        combined.reset(tiny_dataset[3])
        detected = [
            (pi, p)
            for pi, p in enumerate(tiny_dataset[3].packets)
            if p.preamble_detected
        ]
        if detected:
            pi, record = detected[0]
            estimate = combined.estimate(ctx_factory(3, pi))
            assert np.array_equal(estimate.taps, record.h_preamble)

    def test_falls_back_when_not_detected(
        self, ctx_factory, tiny_dataset, tiny_config
    ):
        fallback = KalmanEstimator(2)
        combined = CombinedEstimator(fallback)
        combined.prepare(tiny_dataset[:2], tiny_dataset[2:3], tiny_config)
        combined.reset(tiny_dataset[3])
        missed = [
            pi
            for pi, p in enumerate(tiny_dataset[3].packets)
            if not p.preamble_detected
        ]
        if missed:
            estimate = combined.estimate(ctx_factory(3, missed[0]))
            assert estimate is not None
            assert estimate.needs_phase_alignment

    def test_name_derivation(self):
        assert (
            CombinedEstimator(KalmanEstimator(20)).name
            == "Preamble-Kalman Combined"
        )
