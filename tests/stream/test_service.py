"""PredictionService tests: micro-batch equivalence, coalescing, stats."""

import numpy as np
import pytest

from repro.campaign.models import ModelCheckpointRegistry
from repro.dataset.sets import rotating_set_combinations
from repro.errors import ConfigurationError
from repro.stream import PredictionService


def _frames(traces, count):
    """One depth frame per pseudo-link from the first trace."""
    frames = traces[0].measurement_set.frames
    return [frames[i % len(frames)] for i in range(count)]


class TestMicroBatching:
    def test_flush_matches_per_request_inference(
        self, smoke_service, smoke_traces
    ):
        """Micro-batching is an accelerator, not a different model: the
        predictions match per-request inference to float32 GEMM
        accumulation order (batch-shape-dependent BLAS reductions)."""
        frames = _frames(smoke_traces, 5)
        for link, frame in enumerate(frames):
            smoke_service.submit(link, frame)
        batched = smoke_service.flush()
        assert sorted(batched) == list(range(5))
        for link, frame in enumerate(frames):
            single = smoke_service.predict_one(frame)
            np.testing.assert_allclose(
                batched[link].taps, single.taps, rtol=1e-4, atol=1e-7
            )
            assert batched[link].blockage_probability == pytest.approx(
                single.blockage_probability, rel=1e-9
            )

    def test_resubmit_coalesces_to_freshest_frame(
        self, smoke_service, smoke_traces
    ):
        frames = _frames(smoke_traces, 2)
        smoke_service.submit(0, frames[0])
        smoke_service.submit(0, frames[1])  # stale request replaced
        assert smoke_service.pending == 1
        result = smoke_service.flush()
        expected = smoke_service.predict_one(frames[1])
        np.testing.assert_array_equal(result[0].taps, expected.taps)

    def test_flush_empty_returns_nothing(self, smoke_service):
        assert smoke_service.flush() == {}

    def test_chunking_respects_max_batch(
        self, smoke_service, smoke_traces
    ):
        service = PredictionService(
            smoke_service.trained,
            smoke_service.max_depth_m,
            max_batch=4,
            detector=smoke_service.detector,
        )
        for link, frame in enumerate(_frames(smoke_traces, 10)):
            service.submit(link, frame)
        results = service.flush()
        assert len(results) == 10
        assert service.stats.batches == 3  # 4 + 4 + 2
        assert service.stats.max_batch == 4

    def test_blockage_probabilities_served(
        self, smoke_service, smoke_traces
    ):
        smoke_service.submit(0, _frames(smoke_traces, 1)[0])
        (prediction,) = smoke_service.flush().values()
        assert 0.0 <= prediction.blockage_probability <= 1.0

    def test_max_batch_validation(self, smoke_service):
        with pytest.raises(ConfigurationError):
            PredictionService(
                smoke_service.trained, 6.0, max_batch=0
            )


class TestServiceStats:
    def test_counters_accumulate(self, smoke_service, smoke_traces):
        service = PredictionService(
            smoke_service.trained, smoke_service.max_depth_m
        )
        for link, frame in enumerate(_frames(smoke_traces, 3)):
            service.submit(link, frame)
        service.flush()
        assert service.stats.requests == 3
        assert service.stats.predictions == 3
        assert service.stats.batches == 1
        assert service.stats.flush_seconds > 0.0
        assert len(service.stats.latencies_s) == 3
        assert service.stats.predictions_per_second() > 0.0
        p50, p95 = service.stats.latency_quantiles()
        assert 0.0 < p50 <= p95
        assert "3 prediction(s)" in service.stats.summary()

    def test_idle_stats_are_total(self, smoke_service):
        service = PredictionService(
            smoke_service.trained, smoke_service.max_depth_m
        )
        assert service.stats.predictions_per_second() == 0.0
        assert service.stats.latency_quantiles() == (0.0, 0.0)
        assert service.stats.mean_batch_size() == 0.0


class TestAdmissionControl:
    def test_excess_links_are_shed(self, smoke_service, smoke_traces):
        service = PredictionService(
            smoke_service.trained,
            smoke_service.max_depth_m,
            admission_limit=2,
        )
        frames = _frames(smoke_traces, 4)
        assert service.submit(0, frames[0]) is True
        assert service.submit(1, frames[1]) is True
        assert service.submit(2, frames[2]) is False  # shed
        assert service.submit(3, frames[3]) is False  # shed
        assert service.pending == 2
        assert service.stats.shed_requests == 2
        assert service.stats.requests == 2  # shed submits not counted
        assert sorted(service.flush()) == [0, 1]

    def test_refreshing_pending_link_always_admitted(
        self, smoke_service, smoke_traces
    ):
        service = PredictionService(
            smoke_service.trained,
            smoke_service.max_depth_m,
            admission_limit=1,
        )
        frames = _frames(smoke_traces, 2)
        assert service.submit(0, frames[0]) is True
        # Coalescing a fresher frame onto link 0 is not a new link.
        assert service.submit(0, frames[1]) is True
        assert service.stats.shed_requests == 0
        assert service.pending == 1

    def test_no_limit_is_the_pre_sla_behavior(
        self, smoke_service, smoke_traces
    ):
        service = PredictionService(
            smoke_service.trained, smoke_service.max_depth_m
        )
        for link, frame in enumerate(_frames(smoke_traces, 8)):
            assert service.submit(link, frame) is True
        assert service.stats.shed_requests == 0

    def test_invalid_limit_raises(self, smoke_service):
        with pytest.raises(ConfigurationError):
            PredictionService(
                smoke_service.trained, 6.0, admission_limit=0
            )


class TestSingleClockAccounting:
    def test_observe_flush_feeds_counters_and_reservoir_together(self):
        # One (started_at, completed_at) pair per chunk drives *both*
        # flush_seconds and every latency sample, so the aggregate
        # counters and the quantile views can never disagree about
        # which wall-clock events they summarize.
        from repro.stream.service import ServiceStats

        stats = ServiceStats()
        stats.observe_flush(
            3,
            started_at=10.0,
            completed_at=10.5,
            submitted_ats=[9.8, 9.9, 10.0],
        )
        assert stats.batches == 1
        assert stats.predictions == 3
        assert stats.max_batch == 3
        assert stats.flush_seconds == pytest.approx(0.5)
        assert stats.latency.count == stats.predictions
        assert sorted(stats.latencies_s) == pytest.approx(
            [0.5, 0.6, 0.7]
        )

    def test_quantile_views_agree_on_the_same_events(self):
        from repro.stream.service import ServiceStats

        stats = ServiceStats()
        for chunk in range(8):
            base = float(chunk)
            stats.observe_flush(
                2,
                started_at=base,
                completed_at=base + 0.25,
                submitted_ats=[base - 0.01 * chunk, base],
            )
        p50_quantiles, _ = stats.latency_quantiles()
        p50_sla, p99, p999 = stats.latency_sla()
        assert p50_sla == pytest.approx(p50_quantiles)
        assert p99 <= p999 <= stats.latency.max_s
        # Every sample is submit->completed of a recorded flush.
        assert stats.latency.count == stats.predictions == 16

    def test_observe_single_uses_one_clock_pair(self):
        from repro.stream.service import ServiceStats

        stats = ServiceStats()
        stats.observe_single(started_at=1.0, completed_at=1.125)
        stats.observe_single(started_at=2.0, completed_at=2.125)
        assert stats.singles == 2
        assert stats.single_seconds == pytest.approx(0.25)

    def test_flush_latency_counts_match_predictions(
        self, smoke_service, smoke_traces
    ):
        service = PredictionService(
            smoke_service.trained, smoke_service.max_depth_m, max_batch=2
        )
        for link, frame in enumerate(_frames(smoke_traces, 5)):
            service.submit(link, frame)
        service.flush()
        assert service.stats.batches == 3  # chunks of 2, 2, 1
        assert service.stats.latency.count == service.stats.predictions


class TestBoundedLatencyAccounting:
    def test_reservoir_bounds_memory_keeps_exact_count(
        self, smoke_service
    ):
        # The PR 8 leak fix: the old list grew one float per request
        # forever; the reservoir stays bounded while count/mean stay
        # exact and the (p50, p95) quantile contract survives.
        stats = smoke_service.stats.__class__()
        for i in range(20_000):
            stats.record_latency(0.001 * (i % 50 + 1))
        assert stats.latency.count == 20_000
        assert len(stats.latencies_s) <= stats.latency.capacity
        p50, p95 = stats.latency_quantiles()
        assert 0.0 < p50 <= p95
        p50_sla, p99, p999 = stats.latency_sla()
        assert p50_sla == pytest.approx(p50)
        assert p99 <= p999 <= stats.latency.max_s


class TestFromRegistry:
    def test_restart_is_checkpoint_hit(
        self, smoke_config, smoke_dataset, tmp_path
    ):
        """A service restart over a warmed registry retrains nothing and
        serves bit-identical predictions."""
        combination = rotating_set_combinations(
            smoke_config.dataset.num_sets
        )[0]
        training = [
            smoke_dataset[i] for i in combination.training_indices()
        ]
        validation = [smoke_dataset[combination.validation_index]]
        registry = ModelCheckpointRegistry(tmp_path / "models")
        first = PredictionService.from_registry(
            registry, smoke_config, training, validation
        )
        assert registry.stats.models_trained == 1
        second = PredictionService.from_registry(
            registry, smoke_config, training, validation
        )
        assert registry.stats.models_trained == 1
        assert registry.stats.models_loaded == 1
        frame = smoke_dataset[0].frames[0]
        np.testing.assert_array_equal(
            first.predict_one(frame).taps,
            second.predict_one(frame).taps,
        )
