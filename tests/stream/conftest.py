"""Shared fixtures of the streaming subsystem tests.

One seconds-scale streaming stack (the ``stream-smoke`` scenario: single
crossing walker, tiny dimensions) is built per session and shared by the
event/service/policy/simulator tests; the policy-adaptation acceptance
test builds its own, larger stack in its module.
"""

from __future__ import annotations

import pytest

from repro.campaign.models import ModelCheckpointRegistry
from repro.campaign.scenario import get_scenario
from repro.dataset import build_components, generate_dataset
from repro.dataset.sets import rotating_set_combinations
from repro.stream import (
    PredictionService,
    StreamSimulator,
    build_link_traces,
    stream_link_config,
)


@pytest.fixture(scope="session")
def smoke_config():
    return get_scenario("stream-smoke").resolve()


@pytest.fixture(scope="session")
def smoke_dataset(smoke_config):
    return generate_dataset(smoke_config)


@pytest.fixture(scope="session")
def smoke_service(smoke_config, smoke_dataset, tmp_path_factory):
    combination = rotating_set_combinations(
        smoke_config.dataset.num_sets
    )[0]
    registry = ModelCheckpointRegistry(
        tmp_path_factory.mktemp("stream-models")
    )
    return PredictionService.from_registry(
        registry,
        smoke_config,
        [smoke_dataset[i] for i in combination.training_indices()],
        [smoke_dataset[combination.validation_index]],
    )


@pytest.fixture(scope="session")
def smoke_traces(smoke_config):
    return build_link_traces(smoke_config, links=2, slots=20)


@pytest.fixture(scope="session")
def smoke_simulator(smoke_config, smoke_traces):
    components = build_components(
        stream_link_config(smoke_config, 2, slots=20)
    )
    return StreamSimulator(components, smoke_traces, deadline_slots=3)
