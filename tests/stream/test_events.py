"""Event-stream tests: derived configs, trace disjointness, ordering."""

import numpy as np
import pytest

from repro.campaign.cache import DatasetCache
from repro.errors import ConfigurationError
from repro.stream import (
    STREAM_SEED_OFFSET,
    build_link_traces,
    merge_event_streams,
    stream_link_config,
)
from repro.stream.events import EVENT_FRAME, EVENT_PACKET


class TestStreamLinkConfig:
    def test_keeps_physics_redimensions_dataset(self, smoke_config):
        derived = stream_link_config(smoke_config, links=5, slots=30)
        assert derived.phy == smoke_config.phy
        assert derived.channel == smoke_config.channel
        assert derived.room == smoke_config.room
        assert derived.mobility == smoke_config.mobility
        assert derived.dataset.num_sets == 5
        assert derived.dataset.packets_per_set == 30

    def test_seed_is_disjoint_from_campaign(self, smoke_config):
        derived = stream_link_config(smoke_config, links=2)
        assert derived.seed == smoke_config.seed + STREAM_SEED_OFFSET

    def test_small_link_counts_keep_dataset_valid(self, smoke_config):
        # DatasetConfig requires >= 3 sets.
        derived = stream_link_config(smoke_config, links=1, slots=10)
        assert derived.dataset.num_sets == 3

    def test_validation(self, smoke_config):
        with pytest.raises(ConfigurationError):
            stream_link_config(smoke_config, links=0)
        with pytest.raises(ConfigurationError):
            stream_link_config(smoke_config, links=2, slots=1)

    def test_default_slots_follow_scenario(self, smoke_config):
        derived = stream_link_config(smoke_config, links=2)
        assert (
            derived.dataset.packets_per_set
            == smoke_config.dataset.packets_per_set
        )


class TestLinkTraces:
    def test_each_link_walks_its_own_trajectory(self, smoke_traces):
        a, b = smoke_traces
        assert a.link == 0 and b.link == 1
        assert not np.array_equal(
            a.measurement_set.human_positions,
            b.measurement_set.human_positions,
        )

    def test_traces_disjoint_from_campaign_sets(
        self, smoke_traces, smoke_dataset
    ):
        """No streamed walk replays a training/validation/test set."""
        trace_seeds = {
            p.noise_seed
            for t in smoke_traces
            for p in t.measurement_set.packets
        }
        campaign_seeds = {
            p.noise_seed for s in smoke_dataset for p in s.packets
        }
        assert not trace_seeds & campaign_seeds

    def test_cached_traces_match_generated(
        self, smoke_config, smoke_traces, tmp_path
    ):
        """Cache-resolved traces equal in-process generation, and the
        second resolution is a pure hit."""
        cache = DatasetCache(tmp_path / "cache")
        cached = build_link_traces(
            smoke_config, links=2, slots=20, cache=cache
        )
        assert cache.stats.misses == 1
        for fresh, stored in zip(smoke_traces, cached):
            for a, b in zip(
                fresh.measurement_set.packets,
                stored.measurement_set.packets,
            ):
                assert a.noise_seed == b.noise_seed
                np.testing.assert_array_equal(a.h_ls, b.h_ls)
        again = build_link_traces(
            smoke_config, links=2, slots=20, cache=cache
        )
        assert cache.stats.hits == 1
        assert len(again) == 2


class TestMergedEventStream:
    def test_time_ordered_and_complete(self, smoke_traces):
        events = merge_event_streams(smoke_traces)
        times = [e.time_s for e in events]
        assert times == sorted(times)
        packets = [e for e in events if e.kind == EVENT_PACKET]
        frames = [e for e in events if e.kind == EVENT_FRAME]
        assert len(packets) == sum(
            t.measurement_set.num_packets for t in smoke_traces
        )
        assert len(frames) == sum(
            t.measurement_set.num_frames for t in smoke_traces
        )

    def test_frames_precede_packets_at_equal_time(self, smoke_traces):
        events = merge_event_streams(smoke_traces)
        for earlier, later in zip(events, events[1:]):
            if earlier.time_s == later.time_s:
                assert earlier.kind_rank <= later.kind_rank

    def test_deterministic_across_calls(self, smoke_traces):
        assert merge_event_streams(smoke_traces) == merge_event_streams(
            smoke_traces
        )

    def test_matched_frame_always_precedes_its_packet(
        self, smoke_traces
    ):
        """The LED-matched frame is delivered before the packet event,
        so the prediction service can always serve it in time."""
        events = merge_event_streams(smoke_traces)
        seen: dict[int, int] = {}
        for event in events:
            if event.kind == EVENT_FRAME:
                seen[event.link] = max(
                    seen.get(event.link, -1), event.index
                )
            else:
                record = smoke_traces[
                    event.link
                ].measurement_set.packets[event.index]
                assert record.frame_index <= seen.get(event.link, -1)

    def test_empty_traces_raise(self):
        with pytest.raises(ConfigurationError):
            merge_event_streams([])
