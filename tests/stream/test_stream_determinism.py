"""Closed-loop determinism: bit-identical metrics across runs and workers.

The acceptance contract of the streaming subsystem: one (scenario, seed,
policy) tuple produces byte-identical campaign payloads no matter how
often the campaign runs, in which directory, or how many worker
processes generated the underlying datasets.
"""

import json

import pytest

from repro.campaign.cache import DatasetCache
from repro.campaign.models import ModelCheckpointRegistry
from repro.campaign.runner import Campaign, CampaignContext, stream_steps
from repro.campaign.scenario import get_scenario

_POLICIES = ["proactive", "reactive", "genie"]


def _run_campaign(config, directory, workers, model_dir):
    options = {
        "links": 2,
        "slots": 20,
        "deadline_slots": 3,
        "horizon": 0,
        "seed": 7,
    }
    campaign = Campaign(
        "stream[determinism]",
        stream_steps(config, 2, _POLICIES, slots=20),
        directory,
    )
    context = CampaignContext(
        config,
        DatasetCache(directory / "cache"),
        directory,
        workers=workers,
        options=options,
        checkpoints=ModelCheckpointRegistry(model_dir),
    )
    campaign.run(context)
    return {
        name: context.read_output(f"stream@{name}")
        for name in _POLICIES
    }


class TestStreamDeterminism:
    @pytest.fixture(scope="class")
    def payload_runs(self, tmp_path_factory):
        """The same stream campaign, run serially and with workers=2.

        The two runs share nothing on disk — separate caches, separate
        model registries — so agreement means the whole pipeline
        (dataset generation, training, closed loop) is reproducible
        from seeds alone.
        """
        config = get_scenario("stream-smoke").resolve()
        base = tmp_path_factory.mktemp("determinism")
        serial = _run_campaign(
            config, base / "serial", None, base / "serial-models"
        )
        fanned = _run_campaign(
            config, base / "workers", 2, base / "worker-models"
        )
        return serial, fanned

    def test_metrics_bit_identical_across_workers(self, payload_runs):
        serial, fanned = payload_runs
        for name in _POLICIES:
            assert serial[name] == fanned[name], (
                f"policy {name!r} metrics differ between serial and "
                f"workers=2 runs"
            )

    def test_repeat_run_replays_identical_payloads(
        self, payload_runs, tmp_path
    ):
        """A third, fresh campaign reproduces the stored payloads."""
        serial, _ = payload_runs
        config = get_scenario("stream-smoke").resolve()
        repeat = _run_campaign(
            config, tmp_path / "repeat", None, tmp_path / "models"
        )
        assert repeat == serial

    def test_payloads_are_canonical_json(self, payload_runs):
        serial, _ = payload_runs
        for name, payload in serial.items():
            parsed = json.loads(payload)
            assert payload == json.dumps(parsed, sort_keys=True)
            assert parsed["links"] == 2
            assert parsed["num_slots"] == 20
