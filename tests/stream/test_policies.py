"""Unit tests of the link-adaptation policies and the simulator loop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.metrics import PacketOutcome
from repro.stream import (
    GeniePolicy,
    ProactiveVVDPolicy,
    ReactivePreviousPolicy,
    StreamSimulator,
    build_policy,
)
from repro.stream.policy import SlotContext
from repro.stream.service import Prediction


def _ctx(record, prediction=None):
    return SlotContext(link=0, slot=0, record=record, prediction=prediction)


def _prediction(record, probability):
    return Prediction(
        taps=record.h_ls_canonical, blockage_probability=probability
    )


class TestProactivePolicy:
    def test_transmits_with_predicted_estimate(self, smoke_traces):
        record = smoke_traces[0].measurement_set.packets[0]
        policy = ProactiveVVDPolicy()
        decision = policy.decide(
            _ctx(record, _prediction(record, 0.1))
        )
        assert decision.transmit
        assert decision.estimate.needs_phase_alignment
        np.testing.assert_array_equal(
            decision.estimate.taps, record.h_ls_canonical
        )
        np.testing.assert_array_equal(
            decision.estimate.canonical_taps, record.h_ls_canonical
        )

    def test_defers_on_confident_blockage(self, smoke_traces):
        record = smoke_traces[0].measurement_set.packets[0]
        policy = ProactiveVVDPolicy(defer_threshold=0.5)
        decision = policy.decide(
            _ctx(record, _prediction(record, 0.9))
        )
        assert not decision.transmit
        assert decision.reason == "predicted-blockage"

    def test_threshold_one_disables_deferral(self, smoke_traces):
        record = smoke_traces[0].measurement_set.packets[0]
        policy = ProactiveVVDPolicy(defer_threshold=1.0)
        decision = policy.decide(
            _ctx(record, _prediction(record, 1.0))
        )
        assert decision.transmit

    def test_missing_probability_transmits(self, smoke_traces):
        """Services without a blockage head never defer."""
        record = smoke_traces[0].measurement_set.packets[0]
        policy = ProactiveVVDPolicy(defer_threshold=0.5)
        assert policy.decide(_ctx(record, _prediction(record, None))).transmit

    def test_missing_prediction_raises(self, smoke_traces):
        record = smoke_traces[0].measurement_set.packets[0]
        with pytest.raises(ConfigurationError):
            ProactiveVVDPolicy().decide(_ctx(record))

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            ProactiveVVDPolicy(defer_threshold=0.0)
        with pytest.raises(ConfigurationError):
            ProactiveVVDPolicy(defer_threshold=1.5)

    def test_simulator_rejects_missing_service(self, smoke_simulator):
        with pytest.raises(ConfigurationError):
            smoke_simulator.run(ProactiveVVDPolicy(), service=None)


class TestReactivePolicy:
    def test_warmup_decodes_standard(self, smoke_traces):
        record = smoke_traces[0].measurement_set.packets[0]
        policy = ReactivePreviousPolicy()
        policy.reset(1)
        decision = policy.decide(_ctx(record))
        assert decision.transmit
        assert decision.estimate.taps is None  # standard decoding

    def test_success_installs_estimate_failure_does_not(
        self, smoke_traces
    ):
        packets = smoke_traces[0].measurement_set.packets
        policy = ReactivePreviousPolicy()
        policy.reset(1)

        def outcome(error):
            return PacketOutcome(
                packet_error=error,
                chip_errors=0,
                total_chips=10,
                mse=None,
                estimate_available=True,
            )

        policy.observe(_ctx(packets[0]), outcome(error=True))
        assert policy.decide(_ctx(packets[1])).estimate.taps is None
        policy.observe(_ctx(packets[1]), outcome(error=False))
        decision = policy.decide(_ctx(packets[2]))
        np.testing.assert_array_equal(
            decision.estimate.taps, packets[1].h_ls_canonical
        )
        assert decision.estimate.needs_phase_alignment
        # Deferred slots (outcome None) leave the estimate untouched.
        policy.observe(_ctx(packets[2]), None)
        np.testing.assert_array_equal(
            policy.decide(_ctx(packets[3])).estimate.taps,
            packets[1].h_ls_canonical,
        )


class TestGeniePolicy:
    def test_uses_current_slot_estimate(self, smoke_traces):
        record = smoke_traces[0].measurement_set.packets[4]
        decision = GeniePolicy().decide(_ctx(record))
        assert decision.transmit
        np.testing.assert_array_equal(
            decision.estimate.taps, record.h_ls
        )
        assert not decision.estimate.needs_phase_alignment


class TestPolicyRegistry:
    def test_builds_known_policies(self):
        assert build_policy("proactive").uses_predictions
        assert not build_policy("reactive").uses_predictions
        assert not build_policy("genie").uses_predictions

    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigurationError, match="known policies"):
            build_policy("alien")


class TestSimulatorLoop:
    def test_genie_pass_counts_every_slot(
        self, smoke_simulator, smoke_traces
    ):
        result = smoke_simulator.run(GeniePolicy())
        links = len(smoke_traces)
        slots = result.num_slots
        metrics = result.metrics
        assert metrics.offered == links * slots
        assert metrics.attempts + metrics.deferrals == links * slots
        assert metrics.delivered + metrics.failures == metrics.attempts
        assert len(result.timelines) == links
        assert all(
            len(t.symbols) == slots for t in result.timelines
        )
        assert result.technique.num_packets == metrics.attempts

    def test_deadline_misses_from_forced_deferral(self, smoke_simulator):
        """A policy that never transmits drops every packet at its
        deadline (ARQ bookkeeping, not decode outcomes)."""

        class NeverTransmit(GeniePolicy):
            name = "never"

            def decide(self, ctx):
                decision = super().decide(ctx)
                decision.transmit = False
                return decision

        result = smoke_simulator.run(NeverTransmit())
        metrics = result.metrics
        assert metrics.attempts == 0
        assert metrics.outage == 0.0
        assert metrics.defer_rate == 1.0
        deadline = smoke_simulator.deadline_slots
        expected_misses = sum(
            max(result.num_slots - deadline, 0)
            for _ in range(result.links)
        )
        assert metrics.deadline_misses == expected_misses
        assert set(result.timelines[0].symbols) == {"d"}

    def test_horizon_model_is_fed_older_frames(
        self, smoke_simulator, smoke_traces
    ):
        """A horizon-h service predicts h frames past its input, so the
        simulator must submit the frame h behind the LED match — the
        same clamped offset VVDEstimator uses offline."""

        class _RecordingService:
            def __init__(self, horizon):
                self.trained = type(
                    "T", (), {"horizon_frames": horizon}
                )()
                self.submitted = []

            def submit(self, link, frame):
                self.submitted.append((link, frame))

            def flush(self):
                from repro.stream.service import Prediction

                results = {}
                for link, _ in self.submitted[-2:]:
                    record = smoke_traces[
                        link
                    ].measurement_set.packets[0]
                    results[link] = Prediction(
                        taps=record.h_ls_canonical,
                        blockage_probability=None,
                    )
                return results

        horizon = 3
        service = _RecordingService(horizon)
        smoke_simulator.run(ProactiveVVDPolicy(), service=service)
        slots = smoke_simulator.traces[0].num_slots
        expected = []
        for slot in range(min(slots, 5)):
            for trace in smoke_traces:
                record = trace.measurement_set.packets[slot]
                expected.append(
                    trace.measurement_set.frames[
                        max(record.frame_index - horizon, 0)
                    ]
                )
        for (_, got), want in zip(service.submitted, expected):
            np.testing.assert_array_equal(got, want)

    def test_payload_is_json_stable(self, smoke_simulator):
        import json

        result = smoke_simulator.run(GeniePolicy())
        payload = json.dumps(result.payload(), sort_keys=True)
        rebuilt = json.loads(payload)
        assert rebuilt["policy"] == "Genie"
        assert rebuilt["metrics"]["offered"] == result.metrics.offered
