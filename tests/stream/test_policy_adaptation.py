"""Closed-loop acceptance: proactive VVD beats reactive link adaptation.

The PR's headline claim, asserted end to end on the blockage-heavy
``multi-human-crossing`` scenario (two walkers shuttling across the LoS)
at test scale: decoding with the CNN's depth-image prediction — and
deferring slots the vision pipeline confidently condemns — yields
strictly lower outage than the reactive previous-estimate policy without
sacrificing goodput, with the genie bound confirming the remaining
headroom.  The same run feeds the proactive-vs-reactive timeline figure.

The module trains one CNN (~30 s); every test shares the resulting
simulation results.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.campaign.models import ModelCheckpointRegistry
from repro.campaign.scenario import get_scenario
from repro.dataset import build_components, generate_dataset
from repro.dataset.sets import rotating_set_combinations
from repro.experiments.figures import stream_timeline
from repro.stream import (
    GeniePolicy,
    PredictionService,
    ProactiveVVDPolicy,
    ReactivePreviousPolicy,
    StreamSimulator,
    build_link_traces,
    stream_link_config,
)

_LINKS = 6
_SLOTS = 150


def _acceptance_config():
    """``multi-human-crossing`` at test scale.

    The scenario keeps its identity — two crossing walkers in the
    paper's lab — while the dimensions shrink to tiny-base PHY with
    enough training packets/epochs for the CNN to learn the two-walker
    channel (the pure ``tiny`` budget of 3 epochs underfits it).
    """
    scenario = dataclasses.replace(
        get_scenario("multi-human-crossing"),
        name="multi-human-crossing-test",
        base="tiny",
    )
    config = scenario.resolve()
    return config.replace(
        dataset=dataclasses.replace(
            config.dataset,
            num_sets=8,
            packets_per_set=150,
            skip_initial=4,
        ),
        vvd=dataclasses.replace(
            config.vvd, epochs=60, learning_rate=7e-4
        ),
    )


@pytest.fixture(scope="module")
def adaptation_results(tmp_path_factory):
    config = _acceptance_config()
    sets = generate_dataset(config)
    combination = rotating_set_combinations(config.dataset.num_sets)[0]
    service = PredictionService.from_registry(
        ModelCheckpointRegistry(tmp_path_factory.mktemp("models")),
        config,
        [sets[i] for i in combination.training_indices()],
        [sets[combination.validation_index]],
    )
    traces = build_link_traces(config, links=_LINKS, slots=_SLOTS)
    simulator = StreamSimulator(
        build_components(
            stream_link_config(config, _LINKS, slots=_SLOTS)
        ),
        traces,
        deadline_slots=3,
    )
    return {
        "proactive": simulator.run(ProactiveVVDPolicy(), service=service),
        "reactive": simulator.run(ReactivePreviousPolicy()),
        "genie": simulator.run(GeniePolicy()),
    }


class TestProactiveBeatsReactive:
    def test_strictly_lower_outage(self, adaptation_results):
        proactive = adaptation_results["proactive"].metrics
        reactive = adaptation_results["reactive"].metrics
        assert proactive.outage < reactive.outage, (
            f"proactive outage {proactive.outage:.3f} must beat "
            f"reactive {reactive.outage:.3f}"
        )

    def test_no_goodput_loss(self, adaptation_results):
        proactive = adaptation_results["proactive"].metrics
        reactive = adaptation_results["reactive"].metrics
        assert proactive.goodput_pps >= reactive.goodput_pps, (
            f"proactive goodput {proactive.goodput_pps:.2f}/s must not "
            f"lose to reactive {reactive.goodput_pps:.2f}/s"
        )

    def test_no_worse_deadline_misses(self, adaptation_results):
        proactive = adaptation_results["proactive"].metrics
        reactive = adaptation_results["reactive"].metrics
        assert (
            proactive.deadline_miss_rate <= reactive.deadline_miss_rate
        )

    def test_genie_bounds_both(self, adaptation_results):
        genie = adaptation_results["genie"].metrics
        for name in ("proactive", "reactive"):
            metrics = adaptation_results[name].metrics
            assert genie.outage <= metrics.outage
            assert genie.goodput_pps >= metrics.goodput_pps

    def test_proactive_defers_into_predicted_blockage(
        self, adaptation_results
    ):
        """The deferral mechanism actually engages on this scenario
        (conservative default threshold, so only a modest share)."""
        proactive = adaptation_results["proactive"].metrics
        assert 0.0 < proactive.defer_rate < 0.5
        assert any(
            "d" in timeline.symbols
            for timeline in adaptation_results["proactive"].timelines
        )


class TestTimelineFigure:
    def test_renders_policy_comparison_over_blockage(
        self, adaptation_results
    ):
        payloads = [
            adaptation_results[name].payload()
            for name in ("proactive", "reactive")
        ]
        data = stream_timeline.generate(payloads)
        # The window is anchored on a link that actually sees blockage.
        assert any(data.blocked)
        rendered = stream_timeline.render(data)
        assert "Proactive VVD" in rendered
        assert "Reactive Previous" in rendered
        assert "#" in rendered  # blockage strip
        assert "'d'=deferred" in rendered

    def test_reactive_fails_more_during_blockage(
        self, adaptation_results
    ):
        """Slot-aligned evidence for the headline: counting only the
        LoS-blocked slots, the reactive policy burns strictly more
        failed attempts than the proactive policy across the links."""

        def blocked_failures(result):
            return sum(
                1
                for timeline in result.timelines
                for symbol, flag in zip(
                    timeline.symbols, timeline.blocked
                )
                if flag == "#" and symbol == "X"
            )

        assert blocked_failures(
            adaptation_results["proactive"]
        ) < blocked_failures(adaptation_results["reactive"])
