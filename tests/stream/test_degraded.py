"""Degraded prediction rounds: serving faults fall back, deterministically.

When the prediction service raises mid-round (injected here through the
``service.flush`` fault site) or overruns the optional round deadline,
the simulator must finish the pass on the warm reactive fallback for
the affected rounds — counted in ``StreamMetrics.degraded_rounds`` /
``fallback_decisions`` — and two runs under the same fault plan must
produce byte-identical payloads.
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.dataset import build_components
from repro.errors import (
    ConfigurationError,
    ServiceDeadlineError,
    is_transient,
)
from repro.stream import (
    PredictionService,
    StreamSimulator,
    stream_link_config,
)
from repro.stream.policy import build_policy


@pytest.fixture()
def disarm():
    """Guarantee no fault plan leaks out of a test."""
    yield
    faults.deactivate()


def _fresh_service(smoke_service) -> PredictionService:
    """A service clone with fresh stats (and fresh flush counters)."""
    return PredictionService(
        smoke_service.trained,
        smoke_service.max_depth_m,
        detector=smoke_service.detector,
    )


def _simulator(smoke_config, smoke_traces, **kwargs) -> StreamSimulator:
    components = build_components(
        stream_link_config(smoke_config, 2, slots=20)
    )
    return StreamSimulator(
        components, smoke_traces, deadline_slots=3, **kwargs
    )


def _chaos_run(smoke_config, smoke_traces, smoke_service, state_dir):
    plan = faults.FaultPlan(
        name="serving-outage",
        specs=(
            faults.FaultSpec(
                "service.flush", faults.KIND_IO_ERROR, times=1
            ),
        ),
        state_dir=state_dir,
    )
    faults.activate(plan, state_dir / "plan.json")
    try:
        simulator = _simulator(smoke_config, smoke_traces)
        return simulator.run(
            build_policy("proactive"),
            service=_fresh_service(smoke_service),
        )
    finally:
        faults.deactivate()


class TestServiceFaultDegradation:
    def test_one_faulted_round_degrades_not_aborts(
        self,
        smoke_config,
        smoke_traces,
        smoke_service,
        tmp_path,
        capsys,
        disarm,
    ):
        result = _chaos_run(
            smoke_config, smoke_traces, smoke_service, tmp_path / "s"
        )
        # One faulted round, counted once per affected link.
        assert result.metrics.degraded_rounds == len(smoke_traces)
        assert (
            result.metrics.fallback_decisions
            == result.metrics.degraded_rounds
        )
        for per_link in result.per_link:
            assert per_link.degraded_rounds == 1
        assert "prediction round degraded" in capsys.readouterr().out

    def test_chaos_payload_is_deterministic(
        self, smoke_config, smoke_traces, smoke_service, tmp_path, disarm
    ):
        first = _chaos_run(
            smoke_config, smoke_traces, smoke_service, tmp_path / "a"
        )
        second = _chaos_run(
            smoke_config, smoke_traces, smoke_service, tmp_path / "b"
        )
        assert json.dumps(
            first.payload(), sort_keys=True
        ) == json.dumps(second.payload(), sort_keys=True)

    def test_clean_run_counts_no_degradation(
        self, smoke_config, smoke_traces, smoke_service
    ):
        faults.deactivate()
        result = _simulator(smoke_config, smoke_traces).run(
            build_policy("proactive"),
            service=_fresh_service(smoke_service),
        )
        assert result.metrics.degraded_rounds == 0
        assert result.metrics.fallback_decisions == 0
        payload = result.payload()
        assert payload["metrics"]["degraded_rounds"] == 0


class TestRoundDeadline:
    def test_overrun_degrades_every_round(
        self, smoke_config, smoke_traces, smoke_service, capsys
    ):
        # An impossible budget: every prediction round overruns.
        simulator = _simulator(
            smoke_config, smoke_traces, round_deadline_s=1e-9
        )
        result = simulator.run(
            build_policy("proactive"),
            service=_fresh_service(smoke_service),
        )
        assert result.metrics.degraded_rounds > 0
        assert (
            result.metrics.fallback_decisions
            == result.metrics.degraded_rounds
        )
        assert "ServiceDeadlineError" in capsys.readouterr().out

    def test_deadline_validation(self, smoke_config, smoke_traces):
        with pytest.raises(ConfigurationError, match="round_deadline_s"):
            _simulator(
                smoke_config, smoke_traces, round_deadline_s=0.0
            )

    def test_service_deadline_error_is_transient(self):
        assert is_transient(ServiceDeadlineError("overran")) is True
