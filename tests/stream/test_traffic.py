"""Heterogeneous arrival processes: parsing, validity, determinism.

The arrival streams feed the capacity simulation, so their contract is
the streaming subsystem's usual one: pure functions of ``(seed, link,
spec)``, byte-identical across repeat runs *and across processes*
(string-seeded ``random.Random``, never hash-randomized or
platform-dependent).
"""

import json
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.stream.scheduler import KIND_PACKET, ticks_to_seconds
from repro.stream.traffic import (
    MIXED_PROFILE,
    ArrivalSource,
    ClassAssigner,
    TrafficSpec,
    get_qos_mix,
    link_traffic_spec,
    parse_traffic_spec,
    validate_traffic,
)


def _arrival_ticks(spec_text, link=3, seed=7, duration_s=20.0):
    source = ArrivalSource(
        link, parse_traffic_spec(spec_text), seed, duration_s
    )
    ticks = []
    while True:
        event = source.next_event()
        if event is None:
            return ticks
        ticks.append(event.tick)


class TestParsing:
    def test_defaults_and_canonical_keys(self):
        assert parse_traffic_spec("periodic") == TrafficSpec(
            kind="periodic", rate_pps=10.0
        )
        assert parse_traffic_spec("poisson:12").key() == "poisson:12"
        assert (
            parse_traffic_spec("onoff:40:1:4").key() == "onoff:40:1:4"
        )
        assert (
            parse_traffic_spec("diurnal:10:60:0.8").key()
            == "diurnal:10:60:0.8"
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "warp:10",  # unknown kind
            "poisson:0",  # non-positive rate
            "poisson:12:3",  # extra parameter
            "onoff:40:1",  # missing off dwell
            "onoff:40:0:4",  # non-positive dwell
            "diurnal:10",  # missing period
            "diurnal:10:60:1.5",  # depth out of [0, 1]
            "poisson:abc",  # non-numeric
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ConfigurationError):
            parse_traffic_spec(bad)

    def test_mixed_rotates_the_profile_per_link(self):
        resolved = [
            link_traffic_spec("mixed", link).key() for link in range(8)
        ]
        assert resolved[:4] == list(MIXED_PROFILE)
        assert resolved[4:] == list(MIXED_PROFILE)
        # "mixed" itself is not a concrete spec...
        with pytest.raises(ConfigurationError):
            parse_traffic_spec("mixed")
        # ...but validates as a traffic option.
        assert validate_traffic("mixed") == "mixed"


class TestArrivals:
    def test_periodic_matches_the_replay_grid(self):
        ticks = _arrival_ticks("periodic:10", duration_s=1.0)
        assert [
            round(ticks_to_seconds(t), 6) for t in ticks
        ] == pytest.approx([0.1 * (i + 1) for i in range(10)])

    @pytest.mark.parametrize(
        "spec",
        ["periodic:10", "poisson:12", "onoff:40:1:4", "diurnal:10:60:0.8"],
    )
    def test_streams_are_ordered_and_bounded(self, spec):
        ticks = _arrival_ticks(spec)
        assert ticks == sorted(ticks)
        assert all(t <= 20 * 1_000_000_000 for t in ticks)
        assert len(ticks) > 0

    @pytest.mark.parametrize(
        "spec",
        ["poisson:12", "onoff:40:1:4", "diurnal:10:60:0.8"],
    )
    def test_same_seed_same_stream(self, spec):
        assert _arrival_ticks(spec) == _arrival_ticks(spec)

    def test_links_and_seeds_decorrelate(self):
        base = _arrival_ticks("poisson:12", link=0, seed=7)
        assert _arrival_ticks("poisson:12", link=1, seed=7) != base
        assert _arrival_ticks("poisson:12", link=0, seed=8) != base

    def test_rates_are_roughly_honoured(self):
        # 20 s at nominal 10-12 pps; generous bounds, no flakiness —
        # the streams are deterministic.
        for spec, rate in [
            ("poisson:12", 12.0),
            ("diurnal:10:60:0.8", 10.0),
        ]:
            count = len(_arrival_ticks(spec))
            assert 0.5 * rate * 20 < count < 2.0 * rate * 20

    def test_cross_process_determinism(self):
        """The satellite pin: arrival streams survive process restarts.

        A fresh interpreter (fresh hash randomization, fresh RNG state)
        must reproduce the parent's streams exactly — this is what
        makes ``--jobs N`` capacity payloads byte-identical.
        """
        specs = ["poisson:12", "onoff:40:1:4", "diurnal:10:60:0.8"]
        expected = {spec: _arrival_ticks(spec) for spec in specs}
        script = (
            "import json, sys\n"
            "from repro.stream.traffic import ArrivalSource, "
            "parse_traffic_spec\n"
            "out = {}\n"
            "for spec in json.loads(sys.argv[1]):\n"
            "    source = ArrivalSource(3, parse_traffic_spec(spec), "
            "7, 20.0)\n"
            "    ticks = []\n"
            "    while True:\n"
            "        event = source.next_event()\n"
            "        if event is None:\n"
            "            break\n"
            "        ticks.append(event.tick)\n"
            "    out[spec] = ticks\n"
            "print(json.dumps(out))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script, json.dumps(specs)],
            capture_output=True,
            text=True,
            check=True,
        )
        assert json.loads(result.stdout) == expected

    def test_events_are_packets_with_arrival_ordinals(self):
        source = ArrivalSource(
            5, parse_traffic_spec("poisson:12"), 7, 5.0
        )
        events = []
        while True:
            event = source.next_event()
            if event is None:
                break
            events.append(event)
        assert all(e.kind == KIND_PACKET for e in events)
        assert all(e.link == 5 for e in events)
        assert [e.index for e in events] == list(range(len(events)))


class TestQoS:
    def test_mix_lookup(self):
        triple = get_qos_mix("triple")
        assert [c.name for c in triple] == ["gold", "silver", "bronze"]
        with pytest.raises(ConfigurationError):
            get_qos_mix("platinum")

    def test_assigner_is_deterministic_and_weighted(self):
        def draws(link, seed):
            assigner = ClassAssigner("triple", link, seed)
            return [assigner.draw().name for _ in range(400)]

        first = draws(0, 7)
        assert draws(0, 7) == first
        assert draws(1, 7) != first
        counts = {name: first.count(name) for name in set(first)}
        # 0.2 / 0.3 / 0.5 weights; deterministic, so exact-by-seed.
        assert counts["bronze"] > counts["silver"] > counts["gold"]
