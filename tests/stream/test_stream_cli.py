"""``repro stream`` campaign tests: CLI smoke, kill-resume, cache hits."""

from __future__ import annotations

import pytest

from repro.campaign.cache import DatasetCache
from repro.campaign.cli import main
from repro.campaign.models import ModelCheckpointRegistry
from repro.campaign.runner import Campaign, CampaignContext, stream_steps
from repro.campaign.scenario import get_scenario
from repro.errors import ConfigurationError


class TestStreamCli:
    @pytest.fixture(scope="class")
    def stream_dirs(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("stream-cli")
        return str(base / "cache"), str(base / "models")

    def _argv(self, cache_dir: str, model_dir: str) -> list[str]:
        return [
            "stream",
            "--scenario",
            "stream-smoke",
            "--policies",
            "proactive",
            "reactive",
            "--cache-dir",
            cache_dir,
            "--model-dir",
            model_dir,
        ]

    def test_first_run_trains_and_reports(self, stream_dirs, capsys):
        cache_dir, model_dir = stream_dirs
        assert main(self._argv(cache_dir, model_dir)) == 0
        out = capsys.readouterr().out
        assert "Stream campaign — 2 link(s)" in out
        assert "Proactive VVD" in out
        assert "Reactive Previous" in out
        assert "Stream timeline — link" in out
        assert "'#'=LoS blocked" in out
        assert "service:" in out
        assert "1 model(s) trained" in out

    def test_repeat_run_is_pure_replay(self, stream_dirs, capsys):
        cache_dir, model_dir = stream_dirs
        assert main(self._argv(cache_dir, model_dir)) == 0
        out = capsys.readouterr().out
        assert "0 executed, 6 resumed" in out
        assert "no measurement sets regenerated (100% cache hits)" in out
        assert "no models retrained (100% checkpoint hits)" in out

    def test_fresh_run_hits_cache_and_checkpoints(
        self, stream_dirs, capsys
    ):
        cache_dir, model_dir = stream_dirs
        assert main(self._argv(cache_dir, model_dir) + ["--fresh"]) == 0
        out = capsys.readouterr().out
        assert "6 executed, 0 resumed" in out
        assert "no measurement sets regenerated (100% cache hits)" in out
        assert "no models retrained (100% checkpoint hits)" in out

    def test_wiped_registry_forces_retraining(self, stream_dirs, capsys):
        """A done manifest must not claim checkpoint hits over a wiped
        --model-dir: the train step re-executes."""
        import shutil

        cache_dir, model_dir = stream_dirs
        shutil.rmtree(model_dir)
        assert main(self._argv(cache_dir, model_dir)) == 0
        out = capsys.readouterr().out
        assert "1 model(s) trained" in out
        assert "no models retrained" not in out

    def test_reactive_only_needs_no_model(self, tmp_path, capsys):
        """Prediction-free policies run without any training steps."""
        argv = [
            "stream",
            "--scenario",
            "stream-smoke",
            "--policies",
            "reactive",
            "genie",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--model-dir",
            str(tmp_path / "models"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Genie" in out
        assert "models:" not in out
        assert "4 executed" in out  # links + 2 stream + report


class _KillAfter(ModelCheckpointRegistry):
    """Registry that simulates a mid-campaign kill before training."""

    def load_or_train(self, *args, **kwargs):
        raise KeyboardInterrupt("simulated mid-campaign kill")


class TestKillResume:
    def test_killed_run_resumes_at_unfinished_step(self, tmp_path):
        config = get_scenario("stream-smoke").resolve()
        cache = DatasetCache(tmp_path / "cache")
        directory = tmp_path / "campaign"
        options = {
            "links": 2,
            "slots": 12,
            "deadline_slots": 3,
            "horizon": 0,
            "seed": 7,
        }
        steps = stream_steps(
            config, 2, ["proactive", "reactive"], slots=12
        )

        campaign = Campaign("stream[test]", steps, directory)
        context = CampaignContext(
            config,
            cache,
            directory,
            options=options,
            checkpoints=_KillAfter(tmp_path / "models"),
        )
        with pytest.raises(KeyboardInterrupt):
            campaign.run(context)
        # The dataset step completed before the kill...
        assert context.output_path("dataset").exists()
        # ...but no simulation ran.
        assert not context.output_path("stream@reactive").exists()

        # The resumed run skips the completed dataset step and finishes
        # everything else with a real registry.
        registry = ModelCheckpointRegistry(tmp_path / "models")
        campaign = Campaign(
            "stream[test]",
            stream_steps(config, 2, ["proactive", "reactive"], slots=12),
            directory,
        )
        context = CampaignContext(
            config,
            cache,
            directory,
            options=options,
            checkpoints=registry,
        )
        result = campaign.run(context)
        assert "dataset" in result.skipped
        assert "train@stream" in result.executed
        assert "stream@proactive" in result.executed
        assert registry.stats.models_trained == 1
        assert "Stream campaign" in context.read_output("report")

        # A third run is a pure manifest replay: nothing executes.
        campaign = Campaign(
            "stream[test]",
            stream_steps(config, 2, ["proactive", "reactive"], slots=12),
            directory,
        )
        replay_registry = ModelCheckpointRegistry(tmp_path / "models")
        context = CampaignContext(
            config,
            cache,
            directory,
            options=options,
            checkpoints=replay_registry,
        )
        result = campaign.run(context)
        assert result.executed == []
        assert replay_registry.stats.models_trained == 0
        assert replay_registry.stats.models_loaded == 0


class TestStreamStepsValidation:
    def test_rejects_unknown_and_empty_policies(self):
        config = get_scenario("stream-smoke").resolve()
        with pytest.raises(ConfigurationError, match="known policies"):
            stream_steps(config, 2, ["alien"])
        with pytest.raises(ConfigurationError):
            stream_steps(config, 2, [])

    def test_prediction_steps_require_registry(self, tmp_path):
        config = get_scenario("stream-smoke").resolve()
        campaign = Campaign(
            "stream[test]",
            stream_steps(config, 2, ["proactive"], slots=12),
            tmp_path / "campaign",
        )
        context = CampaignContext(
            config,
            DatasetCache(tmp_path / "cache"),
            tmp_path / "campaign",
            options={"links": 2, "slots": 12},
        )
        with pytest.raises(ConfigurationError):
            campaign.run(context)
