"""Modeled capacity simulation: determinism, shedding, SLA verdicts.

The capacity path is a pure queueing simulation over the heap
scheduler — no PHY, no datasets, no wall clock — so its payloads must
be exact functions of the parameters: byte-identical across repeat
runs and across processes (the campaign's ``--jobs N`` contract rides
on this).
"""

import json
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.stream.capacity import (
    CapacityResult,
    ServiceModel,
    capacity_curve,
    simulate_capacity,
)
from repro.experiments.metrics import StreamMetrics


class TestDeterminism:
    def test_repeat_runs_are_byte_identical(self):
        first = simulate_capacity(24, duration_s=8.0)
        second = simulate_capacity(24, duration_s=8.0)
        assert json.dumps(first.payload(), sort_keys=True) == json.dumps(
            second.payload(), sort_keys=True
        )

    def test_cross_process_payloads_match(self):
        parent = json.dumps(
            simulate_capacity(12, duration_s=6.0).payload(),
            sort_keys=True,
        )
        script = (
            "import json\n"
            "from repro.stream.capacity import simulate_capacity\n"
            "payload = simulate_capacity(12, duration_s=6.0).payload()\n"
            "print(json.dumps(payload, sort_keys=True))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.strip() == parent

    def test_seed_changes_the_run(self):
        a = simulate_capacity(12, duration_s=6.0, seed=7)
        b = simulate_capacity(12, duration_s=6.0, seed=8)
        assert a.payload() != b.payload()


class TestQueueing:
    def test_light_load_meets_every_slo(self):
        result = simulate_capacity(8, duration_s=10.0)
        assert result.slo_met
        assert result.arrivals > 0
        for metrics in result.metrics.classes.values():
            assert metrics.shed == 0
            assert metrics.slo_miss_rate == 0.0

    def test_overload_sheds_and_violates(self):
        # ~14 pps/link mixed traffic against a 50-predictions/s server:
        # massive overload, bounded queue, shedding must engage.
        result = simulate_capacity(
            64,
            duration_s=10.0,
            model=ServiceModel(service_pps=50.0, admission_limit=32),
        )
        assert not result.slo_met
        assert (
            sum(m.shed for m in result.metrics.classes.values()) > 0
        )
        # Shedding counts against the SLO: a class that sheds most of
        # its arrivals cannot report an "ok" miss rate.
        worst = max(
            m.slo_miss_rate for m in result.metrics.classes.values()
        )
        assert worst > 0.5

    def test_shedding_protects_high_priority_classes(self):
        result = simulate_capacity(
            64,
            duration_s=10.0,
            qos="triple",
            model=ServiceModel(service_pps=50.0, admission_limit=32),
        )
        classes = result.metrics.classes
        # Admission evicts strictly-lower-priority victims first, so
        # shed rates must be ordered bronze >= silver >= gold.
        assert (
            classes["bronze"].shed_rate
            >= classes["silver"].shed_rate
            >= classes["gold"].shed_rate
        )
        assert classes["gold"].shed_rate < classes["bronze"].shed_rate

    def test_counters_are_conserved(self):
        result = simulate_capacity(
            48,
            duration_s=10.0,
            model=ServiceModel(service_pps=200.0, admission_limit=64),
        )
        for metrics in result.metrics.classes.values():
            served = metrics.delivered + metrics.deadline_misses
            # Every offered arrival was either served (on time or
            # late), shed, or still queued at the horizon.
            assert metrics.admitted == metrics.offered - metrics.shed
            assert served <= metrics.admitted
        totals = result.metrics
        assert totals.offered == result.arrivals
        assert totals.offered == sum(
            m.offered for m in totals.classes.values()
        )

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            simulate_capacity(0)
        with pytest.raises(ConfigurationError):
            simulate_capacity(4, duration_s=0.0)
        with pytest.raises(ConfigurationError):
            ServiceModel(service_pps=0.0)
        with pytest.raises(ConfigurationError):
            ServiceModel(admission_limit=0)


class TestReporting:
    def test_sla_summary_carries_the_ci_sentinel(self):
        result = simulate_capacity(8, duration_s=5.0)
        summary = result.sla_summary()
        assert summary.startswith("SLA summary — 8 link(s)")
        for name in ("gold", "silver", "bronze"):
            assert name in summary
        assert "(per-class SLOs met)" in summary

    def test_payload_round_trips_through_stream_metrics(self):
        result = simulate_capacity(8, duration_s=5.0)
        payload = json.loads(
            json.dumps(result.payload(), sort_keys=True)
        )
        rebuilt = CapacityResult(
            links=payload["links"],
            duration_s=payload["duration_s"],
            traffic=payload["traffic"],
            qos=payload["qos"],
            metrics=StreamMetrics.from_dict(payload["metrics"]),
            arrivals=payload["arrivals"],
            batches=payload["batches"],
        )
        assert rebuilt.slo_met == result.slo_met
        # The report path rebuilds the SLA table from persisted
        # quantiles (reservoir samples are not serialized) — the table
        # must match the in-process one exactly.
        assert rebuilt.sla_summary() == result.sla_summary()

    def test_capacity_curve_finds_the_knee(self):
        model = ServiceModel(service_pps=150.0, admission_limit=64)
        curve = capacity_curve(
            (4, 8, 64), duration_s=8.0, model=model
        )
        met = {
            r.links: r.slo_met for r in curve.results
        }
        assert met[4] and not met[64]
        assert curve.sustained_links == max(
            links for links, ok in met.items() if ok
        )
