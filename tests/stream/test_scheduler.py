"""Heap scheduler unit tests: ticks, ordering, grouping, lazy replay.

Pins the contracts the PR 8 rewrite introduced:

- integer-tick quantization groups packet slots by exact integer
  comparison (the float-`==` grouping regression test uses the
  adversarial 0.0333... s interval that splits slots under per-link
  float accumulation);
- the scheduler holds one pending event per source (O(links) memory);
- zero traces raise a clean ``ConfigurationError`` instead of the old
  ``min() arg is an empty sequence`` crash, both at the scheduler and
  the :class:`StreamSimulator` layers;
- ragged traces keep their established semantics: frames beyond the
  common slot window are still delivered while packets are truncated.
"""

from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.stream.events import LinkTrace, merge_event_streams
from repro.stream.scheduler import (
    KIND_FRAME,
    KIND_PACKET,
    TICKS_PER_SECOND,
    EventScheduler,
    ReplayLinkSource,
    TickEvent,
    replay_scheduler,
    seconds_to_ticks,
    ticks_to_seconds,
)


def _fake_trace(link, frame_times, packet_times):
    """A duck-typed LinkTrace over synthetic float time grids."""
    packets = [SimpleNamespace(time_s=t) for t in packet_times]
    measurement_set = SimpleNamespace(
        frame_times=list(frame_times),
        packets=packets,
        num_packets=len(packets),
    )
    return LinkTrace(link=link, measurement_set=measurement_set)


class TestTicks:
    def test_round_trip_on_grid(self):
        for time_s in (0.0, 0.001, 0.05, 1.0, 12.345):
            tick = seconds_to_ticks(time_s)
            assert abs(ticks_to_seconds(tick) - time_s) < 1e-9

    def test_float_noise_collapses_onto_one_tick(self):
        # Two ways of computing "30 x 1/30 s" that differ in the last
        # ulp map to the same tick.
        interval = 1.0 / 30.0
        accumulated = 0.0
        for _ in range(30):
            accumulated += interval
        direct = 30 * interval
        assert accumulated != direct  # the float hazard is real
        assert seconds_to_ticks(accumulated) == seconds_to_ticks(direct)

    def test_millisecond_grid_never_merges(self):
        assert seconds_to_ticks(0.001) != seconds_to_ticks(0.002)
        assert (
            seconds_to_ticks(0.002) - seconds_to_ticks(0.001)
            == TICKS_PER_SECOND // 1000
        )


class TestOrdering:
    def test_frames_before_packets_at_equal_tick(self):
        frame = TickEvent(tick=100, kind=KIND_FRAME, link=5, index=0)
        packet = TickEvent(tick=100, kind=KIND_PACKET, link=0, index=0)
        assert frame.sort_key() < packet.sort_key()

    def test_link_breaks_ties_within_kind(self):
        a = TickEvent(tick=100, kind=KIND_PACKET, link=0, index=3)
        b = TickEvent(tick=100, kind=KIND_PACKET, link=1, index=3)
        assert a.sort_key() < b.sort_key()


class TestEventScheduler:
    def test_pending_is_one_per_live_source(self):
        traces = [
            _fake_trace(link, [0.0, 0.5], [0.1, 0.2, 0.3])
            for link in range(8)
        ]
        scheduler = replay_scheduler(traces)
        # 8 sources x 5 events each, but only 8 pending at once.
        assert scheduler.pending == 8
        scheduler.pop()
        assert scheduler.pending == 8  # popped source re-armed

    def test_drain_order_matches_dense_sort(self):
        traces = [
            _fake_trace(0, [0.0, 0.1], [0.05, 0.15]),
            _fake_trace(1, [0.0, 0.1], [0.05, 0.15]),
        ]
        drained = list(replay_scheduler(traces))
        keys = [event.sort_key() for event in drained]
        assert keys == sorted(keys)
        # At t=0.05 both links' packets group after both frames at 0.0.
        same_tick = [e for e in drained if e.tick == seconds_to_ticks(0.05)]
        assert [e.link for e in same_tick] == [0, 1]

    def test_pop_slot_group_stops_at_frames_and_other_ticks(self):
        traces = [
            _fake_trace(0, [0.05], [0.02, 0.08]),
            _fake_trace(1, [], [0.02, 0.08]),
        ]
        scheduler = replay_scheduler(traces)
        first = scheduler.pop_slot_group()
        assert [(e.link, e.index) for e in first] == [(0, 0), (1, 0)]
        # Next event is the frame at 0.05: the group scan returns [].
        assert scheduler.peek().kind == KIND_FRAME
        assert scheduler.pop_slot_group() == []
        scheduler.pop()
        second = scheduler.pop_slot_group()
        assert [(e.link, e.index) for e in second] == [(0, 1), (1, 1)]
        assert scheduler.pop() is None

    def test_empty_traces_raise_configuration_error(self):
        with pytest.raises(ConfigurationError):
            replay_scheduler([])
        with pytest.raises(ConfigurationError):
            replay_scheduler(iter(()))  # exhausted generators too

    def test_adversarial_interval_groups_by_tick(self):
        # 0.0333... s accumulated per link drifts in the last ulp at
        # different slot counts; the dense float-`==` scan split such
        # slots across links.  Integer ticks must group them.
        interval = 1.0 / 30.0
        times_a = [(i + 1) * interval for i in range(12)]
        accumulated = []
        acc = 0.0
        for _ in range(12):
            acc += interval
            accumulated.append(acc)
        assert times_a != accumulated  # per-link float drift is real
        traces = [
            _fake_trace(0, [], times_a),
            _fake_trace(1, [], accumulated),
        ]
        scheduler = replay_scheduler(traces)
        groups = []
        while scheduler.peek() is not None:
            groups.append(scheduler.pop_slot_group())
        assert len(groups) == 12
        assert all(len(group) == 2 for group in groups)


class TestRaggedTraces:
    def test_max_slots_truncates_packets_not_frames(self):
        trace = _fake_trace(0, [0.0, 0.1, 0.2, 0.3], [0.05, 0.15, 0.25])
        source = ReplayLinkSource(trace, max_slots=1)
        drained = []
        while True:
            event = source.next_event()
            if event is None:
                break
            drained.append(event)
        kinds = [(e.kind, e.index) for e in drained]
        # One packet survives; every frame — including those beyond the
        # truncated window — is still delivered.
        assert kinds == [
            (KIND_FRAME, 0),
            (KIND_PACKET, 0),
            (KIND_FRAME, 1),
            (KIND_FRAME, 2),
            (KIND_FRAME, 3),
        ]


class TestMergeEventStreams:
    def test_preserves_exact_trace_floats(self):
        # merge_event_streams reconstructs time_s from the trace data,
        # not from tick round-trips — StreamEvent equality with
        # pre-rewrite payloads depends on it.
        odd_time = 0.1 + 1e-13
        trace = _fake_trace(0, [odd_time], [0.2])
        events = merge_event_streams([trace])
        assert events[0].time_s == odd_time

    def test_empty_iterable_raises(self):
        with pytest.raises(ConfigurationError):
            merge_event_streams([])
        with pytest.raises(ConfigurationError):
            merge_event_streams(trace for trace in ())


class TestSimulatorGuards:
    def test_zero_traces_raise_cleanly(self, smoke_config):
        # The PR 8 bugfix pin: this used to crash with
        # `ValueError: min() arg is an empty sequence` inside run().
        from repro.dataset import build_components
        from repro.stream import StreamSimulator, stream_link_config

        components = build_components(
            stream_link_config(smoke_config, 2, slots=20)
        )
        with pytest.raises(ConfigurationError):
            StreamSimulator(components, [])
        with pytest.raises(ConfigurationError):
            StreamSimulator(components, (t for t in ()))

    def test_ragged_run_filters_packets_keeps_frames(
        self, smoke_config, smoke_traces
    ):
        # A link with fewer packet slots shrinks the common window; the
        # replay must truncate *packets* to it while frames beyond the
        # window still arrive (the camera keeps filming), exactly as
        # the dense pre-sorted scan behaved.
        import dataclasses

        from repro.dataset import build_components
        from repro.stream import (
            StreamSimulator,
            build_policy,
            stream_link_config,
        )

        full, other = smoke_traces
        ragged = LinkTrace(
            link=other.link,
            measurement_set=dataclasses.replace(
                other.measurement_set,
                packets=other.measurement_set.packets[:10],
            ),
        )
        window = min(full.num_slots, ragged.num_slots)
        assert window == 10

        scheduler = replay_scheduler([full, ragged], max_slots=window)
        drained = list(scheduler)
        packet_ticks = [
            e.tick for e in drained if e.kind == KIND_PACKET
        ]
        frame_ticks = [e.tick for e in drained if e.kind == KIND_FRAME]
        assert sum(1 for e in drained if e.kind == KIND_PACKET) == (
            2 * window
        )
        # Frames keep arriving after the last common packet slot.
        assert max(frame_ticks) > max(packet_ticks)

        components = build_components(
            stream_link_config(smoke_config, 2, slots=20)
        )
        simulator = StreamSimulator(
            components, [full, ragged], deadline_slots=3
        )
        result = simulator.run(build_policy("genie"))
        assert result.num_slots == window
        for timeline in result.timelines:
            assert len(timeline.symbols) == window
