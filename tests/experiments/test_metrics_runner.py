"""Tests for metrics, box statistics, the runner, and reporting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import rotating_set_combinations
from repro.errors import DatasetError, ShapeError
from repro.estimation import GroundTruth, PreviousEstimation, StandardDecoding
from repro.experiments import (
    EvaluationRunner,
    box_stats,
    build_baseline_suite,
    format_box_table,
    format_series_table,
)
from repro.experiments.metrics import PacketOutcome, TechniqueResult
from repro.experiments.reporting import format_timeline


def _outcome(error=False, chips=10, chip_errors=0, mse=None):
    return PacketOutcome(
        packet_error=error,
        chip_errors=chip_errors,
        total_chips=chips,
        mse=mse,
        estimate_available=True,
    )


class TestTechniqueResult:
    def test_per(self):
        result = TechniqueResult("x")
        result.add(_outcome(error=True))
        result.add(_outcome(error=False))
        assert result.per == 0.5

    def test_cer_weighted_by_chips(self):
        result = TechniqueResult("x")
        result.add(_outcome(chips=100, chip_errors=10))
        result.add(_outcome(chips=300, chip_errors=0))
        assert result.cer == pytest.approx(10 / 400)

    def test_mse_ignores_none(self):
        result = TechniqueResult("x")
        result.add(_outcome(mse=2.0))
        result.add(_outcome(mse=None))
        assert result.mse == 2.0

    def test_mse_nan_when_absent(self):
        result = TechniqueResult("x")
        result.add(_outcome())
        assert np.isnan(result.mse)

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            TechniqueResult("x").per


class TestBoxStats:
    def test_five_numbers(self):
        stats = box_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.minimum == 1.0
        assert stats.median == 3.0
        assert stats.maximum == 5.0
        assert stats.mean == 3.0

    def test_ignores_nan(self):
        stats = box_stats([1.0, float("nan"), 3.0])
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0

    def test_all_nan_raises(self):
        with pytest.raises(ShapeError):
            box_stats([float("nan")])

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            box_stats([])

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_ordering(self, values):
        stats = box_stats(values)
        assert (
            stats.minimum
            <= stats.q1
            <= stats.median
            <= stats.q3
            <= stats.maximum
        )


class TestRunner:
    def test_combination_run(self, tiny_config, tiny_components, tiny_dataset):
        runner = EvaluationRunner(tiny_components, tiny_dataset)
        combo = rotating_set_combinations(tiny_config.dataset.num_sets)[0]
        estimators = [StandardDecoding(), GroundTruth(),
                      PreviousEstimation(1, 0.1)]
        result = runner.run_combination(combo, estimators)
        assert set(result.techniques) == {
            "Standard Decoding",
            "Ground Truth",
            "100ms Previous",
        }
        expected = (
            tiny_config.dataset.packets_per_set
            - tiny_config.dataset.skip_initial
        )
        for technique in result.techniques.values():
            assert technique.num_packets == expected

    def test_ground_truth_mse_is_zero(
        self, tiny_config, tiny_components, tiny_dataset
    ):
        runner = EvaluationRunner(tiny_components, tiny_dataset)
        combo = rotating_set_combinations(tiny_config.dataset.num_sets)[0]
        result = runner.run_combination(combo, [GroundTruth()])
        assert result.technique("Ground Truth").mse == pytest.approx(0.0)

    def test_ground_truth_not_worse_than_previous(
        self, tiny_config, tiny_components, tiny_dataset
    ):
        runner = EvaluationRunner(tiny_components, tiny_dataset)
        combo = rotating_set_combinations(tiny_config.dataset.num_sets)[0]
        result = runner.run_combination(
            combo, [GroundTruth(), PreviousEstimation(1, 0.1)]
        )
        assert (
            result.technique("Ground Truth").cer
            <= result.technique("100ms Previous").cer + 1e-9
        )

    def test_missing_technique_raises(
        self, tiny_config, tiny_components, tiny_dataset
    ):
        runner = EvaluationRunner(tiny_components, tiny_dataset)
        combo = rotating_set_combinations(tiny_config.dataset.num_sets)[0]
        result = runner.run_combination(combo, [GroundTruth()])
        with pytest.raises(DatasetError):
            result.technique("nope")

    def test_baseline_suite_composition(self, tiny_config):
        suite = build_baseline_suite(tiny_config)
        names = [e.name for e in suite]
        assert "Standard Decoding" in names
        assert "Preamble Based-Genie" in names
        assert any("Combined" in n for n in names)


class TestReporting:
    def test_box_table_contains_rows(self):
        stats = box_stats([0.1, 0.2, 0.3])
        text = format_box_table("t", {"A": stats, "B": stats})
        assert "A" in text and "B" in text and "median" in text

    def test_series_table_alignment(self):
        text = format_series_table(
            "t", "age", ["0s", "1s"], {"x": [1.0, 2.0], "y": [3.0, 4.0]}
        )
        assert "0s" in text and "1.000e+00" in text

    def test_timeline_markers(self):
        text = format_timeline([True, False, True], [False, True, False])
        assert ".X." in text
        assert " # " in text
