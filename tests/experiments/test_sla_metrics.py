"""SLA metrics layer: bounded reservoirs, per-class counters, payloads.

Three contracts ride on this module:

- ``LatencyReservoir`` replaces the unbounded ``latencies_s`` list —
  memory must stay bounded while count/mean/max stay *exact* and the
  sampling stays byte-deterministic (string-seeded RNG, cross-process
  stable);
- ``ClassMetrics`` ratios are total functions on every zero edge, and
  merging preserves the counters exactly;
- ``StreamMetrics`` payloads elide the ``classes`` key when empty so
  pre-SLA stream payloads stay byte-identical, and legacy payloads
  (no ``classes`` key at all) still load.
"""

import json

import pytest

from repro.errors import ShapeError
from repro.experiments.metrics import (
    RESERVOIR_CAPACITY,
    ClassMetrics,
    LatencyReservoir,
    StreamMetrics,
)


class TestLatencyReservoir:
    def test_memory_is_bounded_but_sums_exact(self):
        reservoir = LatencyReservoir(capacity=64, seed="t")
        values = [0.001 * (i + 1) for i in range(10_000)]
        reservoir.extend(values)
        assert len(reservoir.samples) == 64
        assert reservoir.count == 10_000
        assert reservoir.total_s == pytest.approx(sum(values))
        assert reservoir.max_s == pytest.approx(values[-1])
        assert reservoir.mean_s == pytest.approx(
            sum(values) / len(values)
        )

    def test_sampling_is_deterministic(self):
        def fill():
            reservoir = LatencyReservoir(capacity=32, seed="same")
            reservoir.extend(0.001 * (i % 97) for i in range(5_000))
            return reservoir.samples

        assert fill() == fill()
        other = LatencyReservoir(capacity=32, seed="other")
        other.extend(0.001 * (i % 97) for i in range(5_000))
        assert other.samples != fill()

    def test_below_capacity_keeps_everything(self):
        reservoir = LatencyReservoir(capacity=100, seed="t")
        reservoir.extend([0.3, 0.1, 0.2])
        assert reservoir.samples == [0.3, 0.1, 0.2]
        p50, p99, p999 = reservoir.quantiles()
        assert p50 == pytest.approx(0.2)

    def test_empty_reservoir_is_all_zeros(self):
        reservoir = LatencyReservoir()
        assert reservoir.mean_s == 0.0
        assert reservoir.quantiles() == (0.0, 0.0, 0.0)
        assert reservoir.as_dict()["count"] == 0

    def test_merge_keeps_exact_counters(self):
        a = LatencyReservoir(capacity=16, seed="a")
        b = LatencyReservoir(capacity=16, seed="b")
        a.extend([0.1] * 100)
        b.extend([0.4] * 300)
        merged = a.merge(b)
        assert merged.count == 400
        assert merged.total_s == pytest.approx(0.1 * 100 + 0.4 * 300)
        assert merged.max_s == pytest.approx(0.4)
        assert len(merged.samples) == 16

    def test_invalid_capacity_raises(self):
        with pytest.raises(ShapeError):
            LatencyReservoir(capacity=0)

    def test_quantile_growth_to_p999(self):
        reservoir = LatencyReservoir(capacity=4096, seed="t")
        reservoir.extend(0.001 * i for i in range(1, 1001))
        p50, p99, p999 = reservoir.quantiles()
        assert p50 < p99 < p999 <= reservoir.max_s + 1e-12


class TestClassMetrics:
    def test_zero_edges_are_total(self):
        empty = ClassMetrics()
        assert empty.shed_rate == 0.0
        assert empty.deadline_miss_rate == 0.0
        assert empty.slo_miss_rate == 0.0
        assert empty.delivery_rate == 0.0
        assert empty.goodput_pps == 0.0  # zero duration too
        payload = empty.as_dict()
        assert payload["slo_miss_rate"] == 0.0
        assert json.dumps(payload)  # JSON-safe, no NaN

    def test_shed_counts_against_the_slo(self):
        metrics = ClassMetrics(
            offered=100, admitted=60, shed=40, delivered=50,
            deadline_misses=10, duration_s=10.0,
        )
        assert metrics.deadline_miss_rate == pytest.approx(0.10)
        assert metrics.slo_miss_rate == pytest.approx(0.50)

    def test_merge_sums_counters(self):
        a = ClassMetrics(offered=10, admitted=8, shed=2, delivered=7,
                         deadline_misses=1, duration_s=5.0)
        a.latency.extend([0.1] * 7)
        b = ClassMetrics(offered=20, admitted=20, shed=0, delivered=18,
                         deadline_misses=2, duration_s=5.0)
        b.latency.extend([0.2] * 18)
        a.merge(b)
        assert (a.offered, a.admitted, a.shed) == (30, 28, 2)
        assert (a.delivered, a.deadline_misses) == (25, 3)
        assert a.latency.count == 25

    def test_round_trip_preserves_quantiles(self):
        metrics = ClassMetrics(offered=50, admitted=50, delivered=50,
                               duration_s=10.0)
        metrics.latency.extend(0.001 * i for i in range(1, 51))
        payload = json.loads(json.dumps(metrics.as_dict()))
        rebuilt = ClassMetrics.from_dict(payload)
        assert rebuilt.offered == 50
        assert rebuilt.latency.count == 50
        assert rebuilt.latency.samples == []  # summary-only payloads
        # Quantiles answer from the persisted summary, not zeros.
        assert rebuilt.latency.quantiles() == pytest.approx(
            metrics.latency.quantiles()
        )
        assert rebuilt.as_dict() == payload


class TestStreamMetricsClasses:
    def test_empty_classes_elided_from_payloads(self):
        # The byte-identity pin: homogeneous replay payloads must not
        # grow a "classes" key.
        assert "classes" not in StreamMetrics(offered=5).as_dict()

    def test_legacy_payloads_load_with_empty_classes(self):
        legacy = StreamMetrics(offered=5, delivered=4).as_dict()
        assert "classes" not in legacy
        rebuilt = StreamMetrics.from_dict(legacy)
        assert rebuilt.classes == {}
        assert rebuilt.offered == 5

    def test_classes_round_trip_sorted(self):
        metrics = StreamMetrics(offered=30, duration_s=10.0)
        metrics.classes["silver"] = ClassMetrics(offered=20)
        metrics.classes["gold"] = ClassMetrics(offered=10)
        payload = metrics.as_dict()
        assert list(payload["classes"]) == ["gold", "silver"]
        rebuilt = StreamMetrics.from_dict(
            json.loads(json.dumps(payload))
        )
        assert rebuilt.classes["gold"].offered == 10
        assert rebuilt.classes["silver"].offered == 20

    def test_merge_folds_per_class(self):
        a = StreamMetrics(offered=10)
        a.classes["gold"] = ClassMetrics(offered=10, shed=1)
        b = StreamMetrics(offered=20)
        b.classes["gold"] = ClassMetrics(offered=12, shed=2)
        b.classes["bronze"] = ClassMetrics(offered=8)
        a.merge(b)
        assert a.offered == 30
        assert a.classes["gold"].offered == 22
        assert a.classes["gold"].shed == 3
        assert a.classes["bronze"].offered == 8
        # Merging never aliases the other run's instances.
        assert a.classes["bronze"] is not b.classes["bronze"]

    def test_merge_into_classless_total_stays_homogeneous(self):
        total = StreamMetrics()
        total.merge(StreamMetrics(offered=5, delivered=5))
        assert total.classes == {}
        assert "classes" not in total.as_dict()
