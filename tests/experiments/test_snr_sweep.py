"""Tests for the SNR sensitivity ablation."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.snr_sweep import run_snr_sweep


@pytest.fixture(scope="module")
def sweep(tiny_config):
    return run_snr_sweep(tiny_config, snrs_db=(4.0, 12.0))


class TestSNRSweep:
    def test_points_ordered(self, sweep):
        assert sweep.snrs_db == [4.0, 12.0]

    def test_all_techniques_present(self, sweep):
        assert "Ground Truth" in sweep.per
        assert "Standard Decoding" in sweep.per
        assert all(len(v) == 2 for v in sweep.per.values())

    def test_more_noise_never_helps_gt(self, sweep):
        low, high = sweep.per["Ground Truth"]
        assert low >= high - 1e-9

    def test_degradation_metric(self, sweep):
        assert sweep.degradation("Ground Truth") == (
            sweep.per["Ground Truth"][0] - sweep.per["Ground Truth"][-1]
        )

    def test_needs_two_points(self, tiny_config):
        with pytest.raises(ConfigurationError):
            run_snr_sweep(tiny_config, snrs_db=(10.0,))
