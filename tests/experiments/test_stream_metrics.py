"""Edge cases of the offline metrics and the new stream metrics.

The offline ``TechniqueResult`` ratios must never divide by zero or
produce surprise NaNs on zero-packet / all-unavailable results; the
closed-loop :class:`StreamMetrics` ratios are total functions (0.0 on
idle runs) because their payloads are persisted and diffed bit-exactly.
"""

import math

import pytest

from repro.errors import ShapeError
from repro.experiments.metrics import (
    PacketOutcome,
    StreamMetrics,
    TechniqueResult,
)


def _unavailable(chips=10):
    return PacketOutcome(
        packet_error=True,
        chip_errors=chips,
        total_chips=chips,
        mse=None,
        estimate_available=False,
    )


class TestTechniqueResultEdgeCases:
    def test_zero_packet_per_raises_cleanly(self):
        with pytest.raises(ShapeError, match="no outcomes"):
            TechniqueResult("x").per

    def test_zero_packet_cer_raises_cleanly(self):
        with pytest.raises(ShapeError, match="no outcomes"):
            TechniqueResult("x").cer

    def test_zero_packet_availability_raises_cleanly(self):
        with pytest.raises(ShapeError, match="no outcomes"):
            TechniqueResult("x").availability

    def test_zero_packet_mse_is_nan(self):
        assert math.isnan(TechniqueResult("x").mse)

    def test_zero_chips_cer_raises_cleanly(self):
        """Outcomes recorded but zero chips: a clean error, not 0/0."""
        result = TechniqueResult("x")
        result.add(
            PacketOutcome(
                packet_error=True,
                chip_errors=0,
                total_chips=0,
                mse=None,
                estimate_available=False,
            )
        )
        with pytest.raises(ShapeError, match="no chips"):
            result.cer

    def test_all_unavailable_is_well_defined(self):
        """Preamble-style total detection failure: PER 1, CER 1,
        availability 0, MSE NaN — no NaN in the rate metrics."""
        result = TechniqueResult("x")
        for _ in range(3):
            result.add(_unavailable())
        assert result.per == 1.0
        assert result.cer == 1.0
        assert result.availability == 0.0
        assert math.isnan(result.mse)


class TestStreamMetrics:
    def test_idle_run_has_no_nan(self):
        metrics = StreamMetrics()
        assert metrics.goodput_pps == 0.0
        assert metrics.outage == 0.0
        assert metrics.deadline_miss_rate == 0.0
        assert metrics.defer_rate == 0.0
        assert metrics.delivery_rate == 0.0
        assert not any(
            isinstance(v, float) and math.isnan(v)
            for v in metrics.as_dict().values()
        )

    def test_ratios(self):
        metrics = StreamMetrics(
            offered=10,
            delivered=6,
            attempts=8,
            failures=2,
            deferrals=2,
            deadline_misses=3,
            duration_s=2.0,
        )
        assert metrics.goodput_pps == 3.0
        assert metrics.outage == 0.25
        assert metrics.deadline_miss_rate == 0.3
        assert metrics.defer_rate == 0.2
        assert metrics.delivery_rate == 0.6

    def test_all_deferred_outage_is_zero(self):
        """A link that never transmits has outage 0 — nothing failed."""
        metrics = StreamMetrics(
            offered=5, deferrals=5, duration_s=1.0
        )
        assert metrics.outage == 0.0
        assert metrics.defer_rate == 1.0

    def test_merge_accumulates_counters(self):
        total = StreamMetrics(duration_s=2.0)
        total.merge(
            StreamMetrics(
                offered=4, delivered=2, attempts=3, failures=1,
                duration_s=2.0,
            )
        )
        total.merge(
            StreamMetrics(
                offered=4, delivered=4, attempts=4, deferrals=1,
                duration_s=2.0,
            )
        )
        assert total.offered == 8
        assert total.delivered == 6
        assert total.attempts == 7
        assert total.failures == 1
        assert total.deferrals == 1
        assert total.duration_s == 2.0
        assert total.goodput_pps == 3.0

    def test_dict_round_trip(self):
        metrics = StreamMetrics(
            offered=7, delivered=5, attempts=6, failures=1,
            deferrals=1, deadline_misses=1, duration_s=0.7,
            degraded_rounds=2, fallback_decisions=2,
        )
        rebuilt = StreamMetrics.from_dict(metrics.as_dict())
        assert rebuilt == metrics

    def test_degraded_counters_merge(self):
        total = StreamMetrics()
        total.merge(
            StreamMetrics(degraded_rounds=2, fallback_decisions=3)
        )
        total.merge(
            StreamMetrics(degraded_rounds=1, fallback_decisions=1)
        )
        assert total.degraded_rounds == 3
        assert total.fallback_decisions == 4

    def test_legacy_payload_without_degraded_fields_loads(self):
        """Payloads persisted before degraded-mode existed stay readable."""
        payload = StreamMetrics(offered=3, delivered=3).as_dict()
        del payload["degraded_rounds"]
        del payload["fallback_decisions"]
        rebuilt = StreamMetrics.from_dict(payload)
        assert rebuilt.degraded_rounds == 0
        assert rebuilt.fallback_decisions == 0
