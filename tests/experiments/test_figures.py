"""Integration tests for the figure generators on the tiny preset."""

import numpy as np
import pytest

from repro.experiments.bundle import build_evaluation_bundle
from repro.experiments.figures import (
    fig5,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    table1,
    table2,
)
from repro.experiments.hypothesis_testing import run_hypothesis_test


@pytest.fixture(scope="module")
def tiny_bundle(tiny_config):
    return build_evaluation_bundle(tiny_config, num_combinations=2)


class TestBundle:
    def test_all_techniques_present(self, tiny_bundle):
        names = tiny_bundle.technique_names()
        assert "VVD-Current" in names
        assert "Ground Truth" in names
        assert "Preamble-VVD Combined" in names
        assert len(names) == 10

    def test_values_per_combination(self, tiny_bundle):
        values = tiny_bundle.technique_values("Ground Truth", "per")
        assert len(values) == 2

    def test_first_vvd_trained(self, tiny_bundle):
        assert tiny_bundle.first_vvd is not None
        assert tiny_bundle.first_vvd.trained is not None


class TestTables:
    def test_table1_render(self, tiny_bundle):
        text = table1.render(tiny_bundle)
        assert "VVD" in text and "Pilot" in text
        assert "measured mean PER" in text

    def test_table2_render(self, tiny_bundle):
        text = table2.render(tiny_bundle.sets)
        assert "Combo" in text
        assert len(text.splitlines()) == 17


class TestHypothesisFigure:
    def test_displacements_ordered(self, tiny_bundle):
        # The tiny preset is too sparse to guarantee the MSE ordering of
        # Fig. 5 (that is asserted at benchmark scale); the displacement
        # ordering is structural.
        result = run_hypothesis_test(
            tiny_bundle.sets[0], tiny_bundle.sets[-1]
        )
        assert (
            result.instances.displacement_h2_m
            <= result.instances.displacement_h1_m
        )
        assert result.mse_h1 >= 0 and result.mse_h2 >= 0

    def test_render_contains_taps(self, tiny_bundle):
        result = fig5.generate(tiny_bundle.sets[0], tiny_bundle.sets[-1])
        text = fig5.render(result)
        assert "Fig. 5a" in text and "Fig. 5b" in text


class TestBoxFigures:
    def test_fig12_shapes(self, tiny_bundle):
        rows = fig12.generate(tiny_bundle)
        assert set(rows) == set(tiny_bundle.technique_names())
        gt = rows["Ground Truth"].mean
        assert gt <= rows["Standard Decoding"].mean + 1e-9

    def test_fig13_cer_bounds(self, tiny_bundle):
        rows = fig13.generate(tiny_bundle)
        for stats in rows.values():
            assert 0.0 <= stats.minimum <= stats.maximum <= 1.0

    def test_fig14_excludes_reference_rows(self, tiny_bundle):
        rows = fig14.generate(tiny_bundle)
        assert "Ground Truth" not in rows
        assert "Standard Decoding" not in rows
        assert all(stats.minimum >= 0 for stats in rows.values())

    def test_renders(self, tiny_bundle):
        assert "PER" in fig12.render(tiny_bundle)
        assert "chip error" in fig13.render(tiny_bundle)
        assert "MSE" in fig14.render(tiny_bundle)


class TestTimeline:
    def test_fig15_lengths_match(self, tiny_bundle):
        data = fig15.generate(tiny_bundle, length=10)
        assert len(data.successes) == len(data.blocked)
        assert len(data.successes) <= 10

    def test_fig15_render(self, tiny_bundle):
        data = fig15.generate(tiny_bundle)
        text = fig15.render(data)
        assert "decode" in text and "blocked" in text


class TestAgingFigures:
    @pytest.fixture(scope="class")
    def aging_result(self, tiny_bundle):
        # Tiny sets are short; use ages that fit.
        return fig16.generate(tiny_bundle, ages_s=(0.0, 0.1, 0.5))

    def test_series_lengths(self, aging_result):
        assert len(aging_result.genie_mse) == 3
        assert len(aging_result.vvd_per) == 3

    def test_mse_values_positive(self, aging_result):
        assert all(v >= 0 for v in aging_result.genie_mse)
        assert all(v >= 0 for v in aging_result.vvd_mse)

    def test_renders(self, aging_result):
        assert "aging" in fig16.render(aging_result)
        assert "packet error" in fig17.render(aging_result)

    def test_age_exceeding_set_length_rejected(self, tiny_bundle):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fig16.generate(tiny_bundle, ages_s=(0.0, 1e6))
