"""Tests for estimator suite composition and VVD sharing semantics."""

import pytest

from repro.core.vvd import VVDEstimator
from repro.estimation import CombinedEstimator, KalmanEstimator
from repro.experiments import (
    build_full_suite,
    build_kalman_variants,
    build_vvd_variants,
)


class TestFullSuite:
    def test_ten_techniques_in_paper_order(self, tiny_config):
        suite = build_full_suite(tiny_config)
        names = [e.name for e in suite]
        assert names == [
            "Standard Decoding",
            "Preamble Based",
            "500ms Previous",
            "100ms Previous",
            f"Kalman AR({tiny_config.kalman.default_order})",
            "VVD-Current",
            "Preamble-Kalman Combined",
            "Preamble-VVD Combined",
            "Preamble Based-Genie",
            "Ground Truth",
        ]

    def test_vvd_shared_between_standalone_and_combined(self, tiny_config):
        suite = build_full_suite(tiny_config)
        standalone = next(
            e for e in suite if isinstance(e, VVDEstimator)
        )
        combined = next(
            e
            for e in suite
            if isinstance(e, CombinedEstimator) and "VVD" in e.name
        )
        assert combined.fallback is standalone  # one training per combo

    def test_kalman_not_shared(self, tiny_config):
        suite = build_full_suite(tiny_config)
        standalone = next(
            e for e in suite if isinstance(e, KalmanEstimator)
        )
        combined = next(
            e
            for e in suite
            if isinstance(e, CombinedEstimator) and "Kalman" in e.name
        )
        # Kalman keeps per-packet state: instances must be distinct or
        # observe() would run twice per packet.
        assert combined.fallback is not standalone


class TestVariantSuites:
    def test_kalman_orders_from_config(self, tiny_config):
        variants = build_kalman_variants(tiny_config)
        orders = [v.order for v in variants]
        assert tuple(orders) == tiny_config.kalman.orders

    def test_vvd_horizons(self, tiny_config):
        variants = build_vvd_variants(tiny_config)
        horizons = [v.horizon_frames for v in variants]
        assert horizons == [3, 1, 0]
        names = [v.name for v in variants]
        assert names == [
            "VVD-100ms Future",
            "VVD-33.3ms Future",
            "VVD-Current",
        ]

    def test_vvd_variants_are_independent(self, tiny_config):
        variants = build_vvd_variants(tiny_config)
        assert len({id(v) for v in variants}) == 3
