"""Tests for coherence-time analysis and the aging estimators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.experiments.aging import AgedPreambleGenie, AgedVVD
from repro.experiments.coherence import (
    channel_autocorrelation,
    estimate_coherence_time,
    realtime_capable,
)


class TestCoherence:
    def test_autocorrelation_starts_at_one(self, tiny_dataset):
        rho = channel_autocorrelation(tiny_dataset[0], 5)
        assert rho[0] == pytest.approx(1.0)

    def test_autocorrelation_bounded(self, tiny_dataset):
        rho = channel_autocorrelation(tiny_dataset[0], 8)
        assert np.all(rho <= 1.0 + 1e-9)
        assert np.all(rho >= 0.0)

    def test_coherence_time_positive(self, tiny_dataset, tiny_config):
        result = estimate_coherence_time(
            tiny_dataset[0],
            tiny_config.dataset.packet_interval_s,
            max_lag_packets=8,
        )
        assert result.coherence_time_s >= 0.0
        assert len(result.lags_s) == 9

    def test_realtime_argument(self, tiny_dataset, tiny_config):
        result = estimate_coherence_time(
            tiny_dataset[0],
            tiny_config.dataset.packet_interval_s,
            max_lag_packets=8,
        )
        # The paper's ~10 ms CPU inference should beat coherence time
        # whenever the channel stays correlated for at least one packet.
        if result.coherence_time_s >= 0.1:
            assert realtime_capable(result, 0.0098)

    def test_bad_args(self, tiny_dataset):
        with pytest.raises(ShapeError):
            channel_autocorrelation(tiny_dataset[0], 0)
        with pytest.raises(ShapeError):
            channel_autocorrelation(
                tiny_dataset[0], tiny_dataset[0].num_packets + 5
            )
        with pytest.raises(ShapeError):
            realtime_capable(
                estimate_coherence_time(tiny_dataset[0], 0.1, 5), -1.0
            )


class TestAgingEstimators:
    def test_aged_genie_lag_zero_is_genie(
        self, tiny_components, tiny_dataset
    ):
        from repro.dataset import synthesize_received
        from repro.estimation.base import PacketContext

        record = tiny_dataset[0].packets[5]
        ctx = PacketContext(
            measurement_set=tiny_dataset[0],
            index=5,
            record=record,
            received=synthesize_received(tiny_components, record),
            receiver=tiny_components.receiver,
        )
        estimate = AgedPreambleGenie(0).estimate(ctx)
        assert np.array_equal(estimate.taps, record.h_preamble)
        assert not estimate.needs_phase_alignment

    def test_aged_genie_uses_past(self, tiny_components, tiny_dataset):
        from repro.dataset import synthesize_received
        from repro.estimation.base import PacketContext

        record = tiny_dataset[0].packets[5]
        ctx = PacketContext(
            measurement_set=tiny_dataset[0],
            index=5,
            record=record,
            received=synthesize_received(tiny_components, record),
            receiver=tiny_components.receiver,
        )
        estimate = AgedPreambleGenie(3).estimate(ctx)
        expected = tiny_dataset[0].packets[2].h_preamble_canonical
        assert np.array_equal(estimate.taps, expected)
        assert estimate.needs_phase_alignment

    def test_negative_lags_rejected(self):
        with pytest.raises(ConfigurationError):
            AgedPreambleGenie(-1)
        from repro.core import VVDEstimator

        with pytest.raises(ConfigurationError):
            AgedVVD(VVDEstimator(), -1)

    def test_names(self):
        assert AgedPreambleGenie(5).name == "Preamble Genie (-0.5s)"
