"""Tests for measurement-set persistence."""

import numpy as np
import pytest

from repro.dataset.io import (
    load_dataset,
    load_measurement_set,
    save_dataset,
    save_measurement_set,
)
from repro.errors import DatasetError


class TestRoundTrip:
    def test_single_set(self, tiny_dataset, tmp_path):
        original = tiny_dataset[0]
        path = tmp_path / "set.npz"
        save_measurement_set(original, path)
        loaded = load_measurement_set(path)
        assert loaded.index == original.index
        assert loaded.num_packets == original.num_packets
        assert np.allclose(loaded.frames, original.frames)
        for a, b in zip(loaded.packets, original.packets):
            assert a.sequence_number == b.sequence_number
            assert np.allclose(a.h_ls, b.h_ls)
            assert np.allclose(a.h_preamble_canonical, b.h_preamble_canonical)
            assert a.noise_seed == b.noise_seed
            assert a.preamble_detected == b.preamble_detected

    def test_resynthesis_after_reload(
        self, tiny_components, tiny_dataset, tmp_path
    ):
        from repro.dataset import synthesize_received

        path = tmp_path / "set.npz"
        save_measurement_set(tiny_dataset[0], path)
        loaded = load_measurement_set(path)
        a = synthesize_received(tiny_components, tiny_dataset[0].packets[2])
        b = synthesize_received(tiny_components, loaded.packets[2])
        assert np.array_equal(a, b)

    def test_whole_dataset(self, tiny_dataset, tmp_path):
        paths = save_dataset(list(tiny_dataset), tmp_path / "campaign")
        assert len(paths) == len(tiny_dataset)
        loaded = load_dataset(tmp_path / "campaign")
        assert [s.index for s in loaded] == [s.index for s in tiny_dataset]

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_measurement_set(tmp_path / "nope.npz")
        with pytest.raises(DatasetError):
            load_dataset(tmp_path)
