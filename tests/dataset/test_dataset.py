"""Tests for set combinations, trace records, and the generator."""

import numpy as np
import pytest

from repro.dataset import (
    paper_set_combinations,
    rotating_set_combinations,
    synthesize_received,
)
from repro.dataset.sets import SetCombination
from repro.errors import DatasetError


class TestPaperSetCombinations:
    def test_fifteen_rows(self):
        assert len(paper_set_combinations()) == 15

    def test_combination_1_matches_table2(self):
        combo = paper_set_combinations()[0]
        assert combo.validation == 6
        assert combo.test == 8
        assert combo.training == (1, 2, 3, 4, 5, 7, 9, 10, 11, 12, 13, 14, 15)

    def test_combination_13_matches_table2(self):
        # The quirky row: validation 13, test 12.
        combo = paper_set_combinations()[12]
        assert combo.validation == 13
        assert combo.test == 12
        assert 12 not in combo.training and 13 not in combo.training

    def test_every_set_tested_exactly_once(self):
        tests = [c.test for c in paper_set_combinations()]
        assert sorted(tests) == list(range(1, 16))

    def test_no_leakage_anywhere(self):
        for combo in paper_set_combinations():
            assert combo.validation not in combo.training
            assert combo.test not in combo.training
            assert combo.validation != combo.test

    def test_indices_are_zero_based(self):
        combo = paper_set_combinations()[0]
        assert combo.validation_index == 5
        assert combo.test_index == 7
        assert min(combo.training_indices()) == 0


class TestRotatingCombinations:
    def test_matches_paper_at_fifteen(self):
        assert rotating_set_combinations(15) == paper_set_combinations()

    @pytest.mark.parametrize("n", [3, 4, 6, 10])
    def test_structure_for_any_n(self, n):
        combos = rotating_set_combinations(n)
        assert len(combos) == n
        assert sorted(c.test for c in combos) == list(range(1, n + 1))
        for combo in combos:
            assert len(combo.training) == n - 2

    def test_too_few_sets(self):
        with pytest.raises(DatasetError):
            rotating_set_combinations(2)

    def test_leaky_combination_rejected(self):
        with pytest.raises(DatasetError):
            SetCombination(1, (1, 2), validation=2, test=3)
        with pytest.raises(DatasetError):
            SetCombination(1, (1,), validation=2, test=2)


class TestGeneratedDataset:
    def test_set_count_and_sizes(self, tiny_config, tiny_dataset):
        assert len(tiny_dataset) == tiny_config.dataset.num_sets
        for measurement_set in tiny_dataset:
            assert (
                measurement_set.num_packets
                == tiny_config.dataset.packets_per_set
            )
            measurement_set.validate()

    def test_frames_cover_packets(self, tiny_dataset):
        for measurement_set in tiny_dataset:
            for record in measurement_set.packets:
                assert 0 <= record.frame_index < measurement_set.num_frames

    def test_frame_shape_is_cnn_input(self, tiny_config, tiny_dataset):
        rows, cols = tiny_config.camera.output_shape
        assert tiny_dataset[0].frames.shape[1:] == (rows, cols)

    def test_led_synchronization_accuracy(self, tiny_config, tiny_dataset):
        interval = tiny_config.camera.frame_interval_s
        for measurement_set in tiny_dataset:
            for record in measurement_set.packets:
                frame_time = measurement_set.frame_times[record.frame_index]
                assert frame_time <= record.time_s < frame_time + interval

    def test_resynthesis_is_deterministic(
        self, tiny_components, tiny_dataset
    ):
        record = tiny_dataset[0].packets[3]
        a = synthesize_received(tiny_components, record)
        b = synthesize_received(tiny_components, record)
        assert np.array_equal(a, b)

    def test_ls_estimate_close_to_true_channel(self, tiny_dataset):
        for record in tiny_dataset[0].packets[:5]:
            rotated = record.h_true * np.exp(1j * record.phase_offset)
            error = np.max(np.abs(record.h_ls - rotated))
            assert error < 0.2

    def test_canonical_phase_round_trip(self, tiny_dataset):
        record = tiny_dataset[0].packets[0]
        reconstructed = record.h_ls_canonical * np.exp(
            1j * record.phase_to_canonical
        )
        assert np.allclose(reconstructed, record.h_ls)

    def test_different_sets_have_different_trajectories(self, tiny_dataset):
        a = tiny_dataset[0].human_positions
        b = tiny_dataset[1].human_positions
        assert not np.allclose(a[: len(b)], b[: len(a)])

    def test_same_seed_reproduces_dataset(self, tiny_config):
        from repro.dataset import build_components, generate_measurement_set

        comp_a = build_components(tiny_config)
        comp_b = build_components(tiny_config)
        set_a = generate_measurement_set(comp_a, 0)
        set_b = generate_measurement_set(comp_b, 0)
        assert np.allclose(
            set_a.packets[5].h_ls, set_b.packets[5].h_ls
        )
        assert set_a.packets[5].noise_seed == set_b.packets[5].noise_seed

    def test_gt_estimates_matrix(self, tiny_dataset):
        matrix = tiny_dataset[0].gt_estimates()
        assert matrix.shape == (
            tiny_dataset[0].num_packets,
            len(tiny_dataset[0].packets[0].h_ls),
        )

    def test_received_power_drops_when_blocked(self, tiny_dataset):
        blocked = [
            p.received_power
            for s in tiny_dataset
            for p in s.packets
            if p.los_blocked
        ]
        unblocked = [
            p.received_power
            for s in tiny_dataset
            for p in s.packets
            if not p.los_blocked
        ]
        if blocked and unblocked:
            assert np.mean(blocked) < np.mean(unblocked)
