"""Tests for CFO estimation/correction and resampling."""

import numpy as np
import pytest

from repro.config import PhyConfig
from repro.dsp.resampling import decimate, rational_resample
from repro.errors import ShapeError
from repro.phy import Transmitter
from repro.phy.frequency_offset import apply_cfo, correct_cfo, estimate_cfo


@pytest.fixture(scope="module")
def preamble_setup():
    phy = PhyConfig(psdu_bytes=16)
    tx = Transmitter(phy)
    period = 32 * phy.samples_per_chip  # one zero-symbol
    # Use the periodic preamble region only (the SFD tail is aperiodic
    # and would bias the delay-correlation estimate).
    preamble_symbols = 2 * phy.preamble_bytes
    reference = tx.reference_shr_waveform[: preamble_symbols * period]
    return phy, reference, period


class TestCFO:
    @pytest.mark.parametrize("cfo", [-2000.0, -300.0, 150.0, 1800.0])
    def test_estimate_recovers_offset(self, preamble_setup, cfo):
        phy, reference, period = preamble_setup
        received = apply_cfo(reference, cfo, phy.sample_rate_hz)
        estimate = estimate_cfo(
            received, reference, phy.sample_rate_hz, period
        )
        assert estimate == pytest.approx(cfo, abs=20.0)

    def test_estimate_with_noise(self, preamble_setup, rng):
        phy, reference, period = preamble_setup
        received = apply_cfo(reference, 500.0, phy.sample_rate_hz)
        received = received + 0.05 * (
            rng.normal(size=len(received))
            + 1j * rng.normal(size=len(received))
        )
        estimate = estimate_cfo(
            received, reference, phy.sample_rate_hz, period
        )
        assert estimate == pytest.approx(500.0, abs=100.0)

    def test_correct_then_estimate_zero(self, preamble_setup):
        phy, reference, period = preamble_setup
        received = apply_cfo(reference, 700.0, phy.sample_rate_hz)
        corrected = correct_cfo(received, 700.0, phy.sample_rate_hz)
        assert np.allclose(corrected, reference, atol=1e-9)

    def test_apply_correct_roundtrip(self, preamble_setup, rng):
        phy, reference, _ = preamble_setup
        x = rng.normal(size=100) + 1j * rng.normal(size=100)
        y = correct_cfo(
            apply_cfo(x, 1234.0, phy.sample_rate_hz),
            1234.0,
            phy.sample_rate_hz,
        )
        assert np.allclose(y, x, atol=1e-9)

    def test_too_short_window_rejected(self, preamble_setup):
        phy, reference, period = preamble_setup
        with pytest.raises(ShapeError):
            estimate_cfo(
                reference[: period + 2],
                reference,
                phy.sample_rate_hz,
                period,
            )

    def test_zero_signal_returns_zero(self, preamble_setup):
        phy, reference, period = preamble_setup
        zeros = np.zeros(3 * period, dtype=complex)
        assert (
            estimate_cfo(zeros, reference, phy.sample_rate_hz, period)
            == 0.0
        )


class TestResampling:
    def test_rational_length(self, rng):
        x = rng.normal(size=1000)
        y = rational_resample(x, 4, 5)
        assert len(y) == 800

    def test_identity_when_equal(self, rng):
        x = rng.normal(size=64)
        assert np.array_equal(rational_resample(x, 3, 3), x)

    def test_preserves_tone(self, rng):
        # A low-frequency tone survives 10 MHz -> 8 MHz resampling.
        n = 4000
        t = np.arange(n) / 10e6
        tone = np.exp(2j * np.pi * 0.5e6 * t)
        resampled = rational_resample(tone, 4, 5)
        t8 = np.arange(len(resampled)) / 8e6
        expected = np.exp(2j * np.pi * 0.5e6 * t8)
        # Compare away from the filter edges.
        a = resampled[200:-200]
        b = expected[200:-200]
        correlation = abs(np.vdot(a, b)) / (
            np.linalg.norm(a) * np.linalg.norm(b)
        )
        assert correlation > 0.999

    def test_decimate_length_and_dc(self):
        x = np.ones(1000)
        y = decimate(x, 4)
        assert len(y) == len(x[31:][::4])
        assert np.allclose(y[20:-20], 1.0, atol=1e-2)

    def test_bad_args(self, rng):
        with pytest.raises(ShapeError):
            rational_resample(rng.normal(size=(2, 2)), 1, 2)
        with pytest.raises(ShapeError):
            decimate(rng.normal(size=10), 0)
        with pytest.raises(ShapeError):
            decimate(rng.normal(size=10), 2, num_taps=4)
