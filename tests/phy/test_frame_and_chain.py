"""Tests for framing and the full TX -> channel -> RX chain."""

import numpy as np
import pytest

from repro.config import PhyConfig, ReceiverConfig
from repro.errors import ConfigurationError, ShapeError
from repro.phy import FrameLayout, Receiver, Transmitter, make_psdu, parse_psdu
from repro.phy.frame import psdu_from_symbols


@pytest.fixture(scope="module")
def phy():
    return PhyConfig(psdu_bytes=16)


@pytest.fixture(scope="module")
def tx(phy):
    return Transmitter(phy)


@pytest.fixture(scope="module")
def rx(phy, tx):
    return Receiver(phy, ReceiverConfig(), tx)


class TestFrameLayout:
    def test_paper_chip_counts(self):
        layout = FrameLayout(preamble_bytes=4, psdu_bytes=127)
        # 127-byte PSDU -> 8128 chips (Sec. 5.5.2).
        psdu_slice = layout.psdu_chip_slice
        assert psdu_slice.stop - psdu_slice.start == 8128
        # SHR = 4 B preamble + 1 B SFD = 10 symbols = 320 chips.
        assert layout.shr_chips == 320

    def test_total_symbols(self):
        layout = FrameLayout(preamble_bytes=4, psdu_bytes=16)
        assert layout.total_symbols == (4 + 1 + 1 + 16) * 2

    def test_frame_bytes_structure(self):
        layout = FrameLayout(preamble_bytes=4, psdu_bytes=16)
        psdu = make_psdu(5, 16)
        frame = layout.frame_bytes(psdu)
        assert frame[:4] == b"\x00\x00\x00\x00"
        assert frame[4] == 0xA7
        assert frame[5] == 16
        assert frame[6:] == psdu

    def test_wrong_psdu_length_rejected(self):
        layout = FrameLayout(psdu_bytes=16)
        with pytest.raises(ShapeError):
            layout.frame_bytes(b"\x00" * 10)

    def test_psdu_from_symbols_round_trip(self):
        layout = FrameLayout(preamble_bytes=4, psdu_bytes=16)
        psdu = make_psdu(77, 16)
        symbols = layout.frame_symbols(psdu)
        assert psdu_from_symbols(symbols, layout) == psdu


class TestMakePsdu:
    def test_sequence_number_embedded(self):
        psdu = make_psdu(0x1234, 32)
        seq, ok = parse_psdu(psdu)
        assert seq == 0x1234
        assert ok

    def test_same_payload_except_seq_and_crc(self):
        a = make_psdu(1, 32)
        b = make_psdu(2, 32)
        assert a[2:-2] == b[2:-2]
        assert a[:2] != b[:2]
        assert a[-2:] != b[-2:]

    def test_bad_lengths(self):
        with pytest.raises(ConfigurationError):
            make_psdu(0, 4)
        with pytest.raises(ConfigurationError):
            make_psdu(1 << 16, 16)


class TestEndToEndChain:
    def test_clean_channel_decodes(self, tx, rx):
        packet = tx.transmit(3)
        result = rx.decode_standard(packet.waveform)
        assert result.fcs_ok
        assert result.sequence_number == 3
        assert result.psdu == packet.psdu

    def test_multipath_with_gt_estimate(self, tx, rx, rng):
        packet = tx.transmit(9)
        h = np.zeros(11, complex)
        h[5], h[7], h[8] = 1.0, 0.5 * np.exp(0.9j), 0.3 * np.exp(-1.7j)
        received = np.convolve(packet.waveform, h) * np.exp(1.3j)
        received += 0.05 * (
            rng.normal(size=len(received))
            + 1j * rng.normal(size=len(received))
        )
        estimate = rx.full_ls_estimate(received, packet.waveform, 11)
        result = rx.decode_with_estimate(received, estimate)
        assert result.psdu == packet.psdu

    def test_preamble_estimate_close_to_full(self, tx, rx, rng):
        packet = tx.transmit(11)
        h = np.zeros(11, complex)
        h[5], h[6] = 1.0, 0.4j
        received = np.convolve(packet.waveform, h)
        received += 0.02 * (
            rng.normal(size=len(received))
            + 1j * rng.normal(size=len(received))
        )
        full = rx.full_ls_estimate(received, packet.waveform, 11)
        pre = rx.preamble_ls_estimate(received, 11)
        assert np.max(np.abs(full - pre)) < 0.1

    def test_sync_finds_channel_delay(self, tx, rx):
        packet = tx.transmit(2)
        h = np.zeros(11, complex)
        h[6] = 1.0
        received = np.convolve(packet.waveform, h)
        sync = rx.synchronize(received)
        assert sync.offset == 6

    def test_detection_fails_in_deep_fade(self, tx, rx, rng):
        packet = tx.transmit(4)
        received = 0.05 * packet.waveform + 0.3 * (
            rng.normal(size=len(packet.waveform))
            + 1j * rng.normal(size=len(packet.waveform))
        )
        detected, metric = rx.detect_preamble(received)
        assert not detected

    def test_detection_succeeds_clean(self, tx, rx):
        packet = tx.transmit(4)
        detected, metric = rx.detect_preamble(packet.waveform)
        assert detected
        assert metric > 0.5

    def test_blind_phase_shift_alignment(self, tx, rx, rng):
        packet = tx.transmit(6)
        h = np.zeros(11, complex)
        h[5], h[6] = 1.0, 0.3 + 0.2j
        theta = 2.4
        received = np.convolve(packet.waveform, h) * np.exp(1j * theta)
        received += 0.02 * (
            rng.normal(size=len(received))
            + 1j * rng.normal(size=len(received))
        )
        estimated = rx.blind_phase_shift(received, h)
        assert abs(np.angle(np.exp(1j * (estimated - theta)))) < 0.05

    def test_decode_with_bad_estimate_fails(self, tx, rx, rng):
        packet = tx.transmit(8)
        h = np.zeros(11, complex)
        h[5], h[7] = 1.0, 0.8 * np.exp(2.0j)
        received = np.convolve(packet.waveform, h)
        received += 0.3 * (
            rng.normal(size=len(received))
            + 1j * rng.normal(size=len(received))
        )
        wrong = np.zeros(11, complex)
        wrong[5], wrong[7] = 1.0, 0.8 * np.exp(-2.0j)
        good = rx.decode_with_estimate(
            received, rx.full_ls_estimate(received, packet.waveform, 11)
        )
        bad = rx.decode_with_estimate(received, wrong)
        good_errors = np.sum(good.hard_chips != packet.chips)
        bad_errors = np.sum(bad.hard_chips != packet.chips)
        assert bad_errors > good_errors
