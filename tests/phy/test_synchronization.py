"""Tests for frame synchronization internals."""

import numpy as np
import pytest

from repro.config import PhyConfig
from repro.errors import ShapeError, SynchronizationError
from repro.phy import Transmitter
from repro.phy.synchronization import correlate_sync


@pytest.fixture(scope="module")
def reference():
    return Transmitter(PhyConfig(psdu_bytes=16)).reference_shr_waveform


class TestCorrelateSync:
    def test_zero_offset_detected(self, reference):
        padded = np.concatenate([reference, np.zeros(100, complex)])
        result = correlate_sync(padded, reference, 24)
        assert result.offset == 0

    @pytest.mark.parametrize("delay", [1, 5, 12, 24])
    def test_known_delay_recovered(self, reference, delay):
        delayed = np.concatenate(
            [np.zeros(delay, complex), reference, np.zeros(50, complex)]
        )
        result = correlate_sync(delayed, reference, 24)
        assert result.offset == delay

    def test_metric_scales_with_amplitude(self, reference):
        padded = np.concatenate([reference, np.zeros(30, complex)])
        strong = correlate_sync(padded, reference, 8)
        weak = correlate_sync(0.3 * padded, reference, 8)
        assert weak.metric == pytest.approx(0.3 * strong.metric, rel=1e-6)

    def test_metric_robust_to_phase(self, reference):
        padded = np.concatenate([reference, np.zeros(30, complex)])
        rotated = correlate_sync(
            padded * np.exp(1.3j), reference, 8
        )
        plain = correlate_sync(padded, reference, 8)
        assert rotated.metric == pytest.approx(plain.metric, rel=1e-9)
        assert rotated.offset == plain.offset

    def test_noise_only_low_metric(self, reference, rng):
        noise = 0.1 * (
            rng.normal(size=len(reference) + 50)
            + 1j * rng.normal(size=len(reference) + 50)
        )
        result = correlate_sync(noise, reference, 24)
        assert result.metric < 0.1

    def test_window_too_short_raises(self, reference):
        with pytest.raises(SynchronizationError):
            correlate_sync(reference[:100], reference, 4)

    def test_bad_args(self, reference):
        with pytest.raises(ShapeError):
            correlate_sync(
                np.ones((2, 2)), reference, 4
            )
        with pytest.raises(ShapeError):
            correlate_sync(
                np.concatenate([reference, np.zeros(10)]), reference, -1
            )
