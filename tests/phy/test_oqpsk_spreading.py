"""Tests for DSSS spreading and O-QPSK modulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import (
    despread_chips,
    despread_soft_chips,
    half_sine_pulse,
    oqpsk_demodulate,
    oqpsk_modulate,
    spread_symbols,
)
from repro.errors import ShapeError


class TestSpreading:
    def test_round_trip_clean(self, rng):
        symbols = rng.integers(0, 16, 100).astype(np.uint8)
        chips = spread_symbols(symbols)
        assert len(chips) == 3200
        recovered = despread_chips(chips)
        assert np.array_equal(recovered, symbols)

    def test_survives_small_chip_error_rate(self, rng):
        symbols = rng.integers(0, 16, 200).astype(np.uint8)
        chips = spread_symbols(symbols).copy()
        flips = rng.random(len(chips)) < 0.05
        chips = chips ^ flips
        recovered = despread_chips(chips)
        assert np.mean(recovered != symbols) < 0.02

    def test_soft_despread_scores_shape(self, rng):
        symbols = rng.integers(0, 16, 10).astype(np.uint8)
        soft = 2.0 * spread_symbols(symbols) - 1.0
        decoded, scores = despread_soft_chips(soft)
        assert scores.shape == (10, 16)
        assert np.array_equal(decoded, symbols)

    def test_rejects_non_multiple_of_32(self):
        with pytest.raises(ShapeError):
            despread_chips(np.zeros(33, dtype=np.int8))

    def test_rejects_bad_symbols(self):
        with pytest.raises(ShapeError):
            spread_symbols(np.array([16]))

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        p=st.floats(min_value=0.0, max_value=0.08),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_despreading_error_correction(self, seed, p):
        gen = np.random.default_rng(seed)
        symbols = gen.integers(0, 16, 60).astype(np.uint8)
        chips = spread_symbols(symbols) ^ (gen.random(1920) < p)
        recovered = despread_chips(chips)
        # Below ~8% random chip errors, symbol errors are rare.
        assert np.mean(recovered != symbols) <= 0.05


class TestHalfSinePulse:
    def test_span_and_peak(self):
        pulse = half_sine_pulse(4)
        assert len(pulse) == 8
        assert pulse[0] == pytest.approx(0.0)
        assert np.max(pulse) <= 1.0

    def test_symmetry(self):
        pulse = half_sine_pulse(6)
        assert np.allclose(pulse[1:], pulse[1:][::-1], atol=1e-12)

    def test_rejects_small_spc(self):
        with pytest.raises(ShapeError):
            half_sine_pulse(1)


class TestOQPSK:
    def test_output_length(self, rng):
        chips = rng.integers(0, 2, 64)
        waveform = oqpsk_modulate(chips, 4)
        assert len(waveform) == 65 * 4

    def test_near_constant_envelope(self, rng):
        # MSK property: away from the edges the envelope is ~1.
        chips = rng.integers(0, 2, 256)
        waveform = oqpsk_modulate(chips, 8)
        interior = np.abs(waveform[16:-16])
        assert np.min(interior) > 0.65
        assert np.max(interior) < 1.05

    def test_odd_chip_count_rejected(self, rng):
        with pytest.raises(ShapeError):
            oqpsk_modulate(np.array([0, 1, 0]), 4)

    def test_demodulation_round_trip(self, rng):
        chips = rng.integers(0, 2, 512)
        waveform = oqpsk_modulate(chips, 4)
        _, hard = oqpsk_demodulate(waveform, 512, 4)
        assert np.array_equal(hard, chips)

    def test_round_trip_with_noise(self, rng):
        chips = rng.integers(0, 2, 512)
        waveform = oqpsk_modulate(chips, 4)
        noisy = waveform + 0.2 * (
            rng.normal(size=len(waveform))
            + 1j * rng.normal(size=len(waveform))
        )
        _, hard = oqpsk_demodulate(noisy, 512, 4)
        assert np.mean(hard != chips) < 0.03

    def test_phase_rotation_breaks_rails(self, rng):
        # A 90-degree rotation swaps I and Q: demod must fail badly,
        # demonstrating the need for phase correction.
        chips = rng.integers(0, 2, 512)
        waveform = oqpsk_modulate(chips, 4) * np.exp(1j * np.pi / 2)
        _, hard = oqpsk_demodulate(waveform, 512, 4)
        assert np.mean(hard != chips) > 0.2

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        spc=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_clean_round_trip(self, seed, spc):
        gen = np.random.default_rng(seed)
        chips = gen.integers(0, 2, 128)
        waveform = oqpsk_modulate(chips, spc)
        _, hard = oqpsk_demodulate(waveform, 128, spc)
        assert np.array_equal(hard, chips)
