"""Property-based tests over the full PHY chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PhyConfig, ReceiverConfig
from repro.phy import Receiver, Transmitter


@pytest.fixture(scope="module")
def chain():
    phy = PhyConfig(psdu_bytes=8)
    tx = Transmitter(phy)
    rx = Receiver(phy, ReceiverConfig(), tx)
    return tx, rx


class TestFullChainProperties:
    @given(seq=st.integers(min_value=0, max_value=65535))
    @settings(max_examples=20, deadline=None)
    def test_any_sequence_number_round_trips(self, chain, seq):
        tx, rx = chain
        packet = tx.transmit(seq)
        result = rx.decode_standard(packet.waveform)
        assert result.sequence_number == seq
        assert result.fcs_ok

    @given(
        seq=st.integers(min_value=0, max_value=65535),
        phase=st.floats(min_value=-3.14, max_value=3.14),
    )
    @settings(max_examples=15, deadline=None)
    def test_crystal_phase_never_breaks_standard_decode(
        self, chain, seq, phase
    ):
        # Standard decoding scalar-gain-corrects any global rotation.
        tx, rx = chain
        packet = tx.transmit(seq)
        rotated = packet.waveform * np.exp(1j * phase)
        result = rx.decode_standard(rotated)
        assert result.psdu == packet.psdu

    @given(
        delay=st.integers(min_value=0, max_value=10),
        seq=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_pure_delay_channels_decode_with_gt(self, chain, delay, seq):
        tx, rx = chain
        packet = tx.transmit(seq)
        h = np.zeros(11, complex)
        h[delay] = 1.0
        received = np.convolve(packet.waveform, h)
        estimate = rx.full_ls_estimate(received, packet.waveform, 11)
        result = rx.decode_with_estimate(received, estimate)
        assert result.psdu == packet.psdu

    @given(
        scale=st.floats(min_value=0.2, max_value=5.0),
        seq=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=10, deadline=None)
    def test_amplitude_scaling_invariance(self, chain, scale, seq):
        # ZF equalization with the scaled estimate cancels any gain.
        tx, rx = chain
        packet = tx.transmit(seq)
        received = scale * packet.waveform
        estimate = rx.full_ls_estimate(received, packet.waveform, 11)
        result = rx.decode_with_estimate(received, estimate)
        assert result.psdu == packet.psdu
