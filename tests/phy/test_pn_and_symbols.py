"""Tests for PN sequences, byte/symbol mapping, and CRC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import (
    PN_SEQUENCES,
    append_fcs,
    bytes_to_symbols,
    check_fcs,
    crc16_itut,
    pn_sequence,
    symbols_to_bytes,
)
from repro.phy.pn import CHIPS_PER_SYMBOL, NUM_SYMBOLS
from repro.errors import ShapeError


class TestPNSequences:
    def test_table_shape(self):
        assert PN_SEQUENCES.shape == (NUM_SYMBOLS, CHIPS_PER_SYMBOL)

    def test_symbol_zero_is_standard_base(self):
        expected = np.array(
            [1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
             0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0]
        )
        assert np.array_equal(PN_SEQUENCES[0], expected)

    def test_symbol_one_is_right_rotation_by_four(self):
        assert np.array_equal(
            PN_SEQUENCES[1], np.roll(PN_SEQUENCES[0], 4)
        )

    def test_symbol_eight_is_standard_value(self):
        # IEEE 802.15.4-2003 Table 73, symbol 8.
        expected = np.array(
            [1, 0, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 0,
             0, 0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 1, 1]
        )
        assert np.array_equal(PN_SEQUENCES[8], expected)

    def test_upper_half_inverts_odd_chips(self):
        for symbol in range(8):
            base = PN_SEQUENCES[symbol]
            upper = PN_SEQUENCES[symbol + 8]
            assert np.array_equal(base[0::2], upper[0::2])
            assert np.array_equal(1 - base[1::2], upper[1::2])

    def test_sequences_are_distinct(self):
        as_tuples = {tuple(seq) for seq in PN_SEQUENCES}
        assert len(as_tuples) == NUM_SYMBOLS

    def test_near_orthogonality(self):
        # Pairwise Hamming distances are large (>= 12 chips).
        for i in range(NUM_SYMBOLS):
            for j in range(i + 1, NUM_SYMBOLS):
                distance = np.sum(PN_SEQUENCES[i] != PN_SEQUENCES[j])
                assert distance >= 12

    def test_pn_sequence_bounds(self):
        with pytest.raises(ShapeError):
            pn_sequence(16)
        with pytest.raises(ShapeError):
            pn_sequence(-1)

    def test_table_is_readonly(self):
        with pytest.raises(ValueError):
            PN_SEQUENCES[0, 0] = 0


class TestByteSymbolMapping:
    def test_lsb_nibble_first(self):
        assert list(bytes_to_symbols(b"\xa7")) == [0x7, 0xA]

    def test_round_trip(self):
        data = bytes(range(256))
        assert symbols_to_bytes(bytes_to_symbols(data)) == data

    def test_odd_symbol_count_rejected(self):
        with pytest.raises(ShapeError):
            symbols_to_bytes(np.array([1, 2, 3], dtype=np.uint8))

    def test_out_of_range_symbol_rejected(self):
        with pytest.raises(ShapeError):
            symbols_to_bytes(np.array([1, 17], dtype=np.uint8))

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_property_round_trip(self, data):
        assert symbols_to_bytes(bytes_to_symbols(data)) == data


class TestCRC:
    def test_known_vector(self):
        # CRC-16/KERMIT (the 802.15.4 FCS) of "123456789" is 0x2189.
        assert crc16_itut(b"123456789") == 0x2189

    def test_empty_is_zero(self):
        assert crc16_itut(b"") == 0x0000

    def test_append_and_check(self):
        payload = b"hello 802.15.4"
        assert check_fcs(append_fcs(payload))

    def test_detects_single_bit_flip(self):
        psdu = bytearray(append_fcs(b"some payload bytes"))
        psdu[3] ^= 0x04
        assert not check_fcs(bytes(psdu))

    def test_short_psdu_fails(self):
        assert not check_fcs(b"\x01\x02")

    @given(st.binary(min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_property_valid_fcs_always_checks(self, payload):
        assert check_fcs(append_fcs(payload))

    @given(
        st.binary(min_size=2, max_size=60),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_bit_flip_detected(self, payload, bit):
        psdu = bytearray(append_fcs(payload))
        psdu[0] ^= 1 << bit
        assert not check_fcs(bytes(psdu))
