"""Tests for the exception hierarchy and top-level API surface."""

import pytest

import repro
from repro.api import errors as api_errors
from repro.errors import (
    ConfigurationError,
    ConflictError,
    DatasetError,
    DecodingError,
    NotFittedError,
    NotFoundError,
    ReproError,
    ShapeError,
    SynchronizationError,
    TransientError,
    UnavailableError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            ShapeError,
            SynchronizationError,
            NotFittedError,
            DecodingError,
            DatasetError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_catchable_as_such(self):
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(ShapeError, ValueError)

    def test_not_fitted_is_runtime_error(self):
        assert issubclass(NotFittedError, RuntimeError)

    def test_library_errors_catchable_with_one_clause(self):
        with pytest.raises(ReproError):
            raise DatasetError("boom")

    def test_service_errors_derive_from_repro_error(self):
        assert issubclass(NotFoundError, ConfigurationError)
        assert issubclass(ConflictError, ReproError)
        assert issubclass(UnavailableError, TransientError)

    def test_not_found_catchable_as_configuration_error(self):
        # Existing callers catching ConfigurationError keep working
        # after get_scenario/get_grid started raising NotFoundError.
        with pytest.raises(ConfigurationError):
            raise NotFoundError("unknown scenario 'x'")


class TestOutcomeTable:
    """One table maps outcome codes to CLI exit codes + HTTP statuses."""

    def test_table_is_total_over_codes(self):
        for code, (exit_code, status) in api_errors.OUTCOME_TABLE.items():
            assert api_errors.exit_code_for(code) == exit_code
            assert api_errors.http_status_for(code) == status

    def test_pinned_mappings(self):
        assert api_errors.OUTCOME_TABLE["ok"] == (0, 200)
        assert api_errors.OUTCOME_TABLE["invalid"] == (2, 400)
        assert api_errors.OUTCOME_TABLE["not_found"] == (2, 404)
        assert api_errors.OUTCOME_TABLE["conflict"] == (2, 409)
        assert api_errors.OUTCOME_TABLE["quarantined"] == (3, 409)
        assert api_errors.OUTCOME_TABLE["unavailable"] == (4, 503)
        assert api_errors.OUTCOME_TABLE["internal"] == (1, 500)

    def test_exit_constants_derive_from_table(self):
        assert api_errors.EXIT_OK == api_errors.exit_code_for("ok")
        assert api_errors.EXIT_ERROR == api_errors.exit_code_for("invalid")
        assert api_errors.EXIT_QUARANTINED == api_errors.exit_code_for(
            "quarantined"
        )

    @pytest.mark.parametrize(
        "exc, code",
        [
            (NotFoundError("x"), "not_found"),
            (UnavailableError("x"), "unavailable"),
            (ConflictError("x"), "conflict"),
            (ConfigurationError("x"), "invalid"),
            (DatasetError("x"), "invalid"),
            (RuntimeError("x"), "internal"),
        ],
    )
    def test_classify_exception(self, exc, code):
        assert api_errors.classify_exception(exc) == code

    def test_cli_exit_code_follows_table(self, tmp_path, capsys):
        from repro.campaign.cli import main as cli_main

        code = cli_main(
            ["sweep", "--scenario", "atlantis", "--cache-dir", str(tmp_path)]
        )
        capsys.readouterr()
        assert code == api_errors.exit_code_for("not_found")

    def test_http_status_follows_table_for_same_error(self):
        # The CLI exits 2 and the daemon answers 404 from ONE row.
        exc = NotFoundError("unknown scenario 'atlantis'")
        code = api_errors.classify_exception(exc)
        assert api_errors.exit_code_for(code) == 2
        assert api_errors.http_status_for(code) == 404


class TestTopLevelAPI:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_config_accessible(self):
        config = repro.SimulationConfig.tiny()
        assert config.phy.chip_rate_hz == 2.0e6

    def test_docstring_quickstart_names_exist(self):
        # The module docstring references these; keep them importable.
        from repro import build_components, generate_dataset  # noqa: F401
        from repro.dataset import rotating_set_combinations  # noqa: F401
        from repro.experiments import (  # noqa: F401
            EvaluationRunner,
            build_full_suite,
        )
