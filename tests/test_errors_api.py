"""Tests for the exception hierarchy and top-level API surface."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    DatasetError,
    DecodingError,
    NotFittedError,
    ReproError,
    ShapeError,
    SynchronizationError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            ShapeError,
            SynchronizationError,
            NotFittedError,
            DecodingError,
            DatasetError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_catchable_as_such(self):
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(ShapeError, ValueError)

    def test_not_fitted_is_runtime_error(self):
        assert issubclass(NotFittedError, RuntimeError)

    def test_library_errors_catchable_with_one_clause(self):
        with pytest.raises(ReproError):
            raise DatasetError("boom")


class TestTopLevelAPI:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_config_accessible(self):
        config = repro.SimulationConfig.tiny()
        assert config.phy.chip_rate_hz == 2.0e6

    def test_docstring_quickstart_names_exist(self):
        # The module docstring references these; keep them importable.
        from repro import build_components, generate_dataset  # noqa: F401
        from repro.dataset import rotating_set_combinations  # noqa: F401
        from repro.experiments import (  # noqa: F401
            EvaluationRunner,
            build_full_suite,
        )
