"""Equivalence of the batched PHY paths against the scalar pipeline.

The batched engine must be a pure accelerator: every ``*_batch`` path is
asserted bit-exact (or ``allclose`` at 1e-10) against its scalar
counterpart over randomized packets, and the seeded-noise replay
contract of ``synthesize_received`` is pinned down explicitly.
"""

import numpy as np
import pytest

from repro.channel.noise import awgn
from repro.config import SimulationConfig
from repro.dataset import (
    build_components,
    generate_measurement_set,
    synthesize_received,
    synthesize_received_batch,
)
from repro.dsp import (
    canonicalize_phase,
    canonicalize_phase_batch,
    convolve_batch,
    correlate_lags_batch,
    equalize,
    equalize_batch,
    equalizer_delay,
    ls_channel_estimate,
    ls_channel_estimate_batch,
    zero_forcing_equalizer,
)
from repro.phy import get_batch_engine
from repro.phy.synchronization import correlate_sync, correlate_sync_batch

TOL = 1e-10


@pytest.fixture(scope="module")
def tiny_components():
    return build_components(SimulationConfig.tiny())


@pytest.fixture(scope="module")
def packet_batch(tiny_components):
    """Randomized packets: waveforms, channels, and received rows."""
    rng = np.random.default_rng(424242)
    transmitter = tiny_components.transmitter
    sequences = [0, 3, 1009, 40001, 65535, 17]
    waveforms = np.stack(
        [transmitter.transmit(s).waveform for s in sequences]
    )
    channels = rng.normal(size=(len(sequences), 11)) + 1j * rng.normal(
        size=(len(sequences), 11)
    )
    phases = rng.uniform(0.0, 2.0 * np.pi, len(sequences))
    seeds = rng.integers(0, 2**63 - 1, len(sequences))
    received = np.stack(
        [
            np.convolve(waveforms[i], channels[i])
            * np.exp(1j * phases[i])
            + awgn(
                np.random.default_rng(int(seeds[i])),
                waveforms.shape[1] + 10,
                0.05,
            )
            for i in range(len(sequences))
        ]
    )
    return {
        "sequences": sequences,
        "waveforms": waveforms,
        "channels": channels,
        "phases": phases,
        "seeds": seeds,
        "received": received,
    }


class TestDspBatchPrimitives:
    def test_convolve_batch_matches_np_convolve(self):
        rng = np.random.default_rng(1)
        signals = rng.normal(size=(5, 400)) + 1j * rng.normal(size=(5, 400))
        taps = rng.normal(size=(5, 7)) + 1j * rng.normal(size=(5, 7))
        out = convolve_batch(signals, taps)
        for i in range(5):
            assert np.array_equal(out[i], np.convolve(signals[i], taps[i]))

    def test_convolve_batch_fft_path(self):
        rng = np.random.default_rng(2)
        signals = rng.normal(size=(3, 500)) + 1j * rng.normal(size=(3, 500))
        taps = rng.normal(size=(3, 100)) + 1j * rng.normal(size=(3, 100))
        out = convolve_batch(signals, taps, method="fft")
        for i in range(3):
            ref = np.convolve(signals[i], taps[i])
            assert np.allclose(out[i], ref, atol=TOL)

    def test_correlate_lags_batch(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(4, 300)) + 1j * rng.normal(size=(4, 300))
        b = rng.normal(size=(4, 290)) + 1j * rng.normal(size=(4, 290))
        lags = correlate_lags_batch(a, b, 11)
        for i in range(4):
            full = np.correlate(a[i], b[i], mode="full")
            zero = len(b[i]) - 1
            assert np.allclose(
                lags[i], full[zero : zero + 11], atol=TOL
            )

    def test_ls_estimate_batch_full_mode(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(4, 600)) + 1j * rng.normal(size=(4, 600))
        h = rng.normal(size=(4, 9)) + 1j * rng.normal(size=(4, 9))
        y = convolve_batch(x, h)
        estimates = ls_channel_estimate_batch(x, y, 9, mode="full")
        for i in range(4):
            scalar = ls_channel_estimate(x[i], y[i], 9, mode="full")
            assert np.allclose(estimates[i], scalar, atol=TOL)

    def test_ls_estimate_batch_valid_mode(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=500) + 1j * rng.normal(size=500)
        h = rng.normal(size=(3, 6)) + 1j * rng.normal(size=(3, 6))
        y = convolve_batch(
            np.broadcast_to(x, (3, len(x))), h
        )
        estimates = ls_channel_estimate_batch(x, y, 6, mode="valid")
        for i in range(3):
            scalar = ls_channel_estimate(x, y[i], 6, mode="valid")
            assert np.allclose(estimates[i], scalar, atol=TOL)

    def test_equalize_batch_matches_scalar(self):
        rng = np.random.default_rng(6)
        y = rng.normal(size=(3, 200)) + 1j * rng.normal(size=(3, 200))
        eqs = rng.normal(size=(3, 15)) + 1j * rng.normal(size=(3, 15))
        out = equalize_batch(y, eqs, delay=7, output_length=200)
        for i in range(3):
            ref = equalize(y[i], eqs[i], delay=7, output_length=200)
            assert np.array_equal(out[i], ref)

    def test_zero_forcing_toeplitz_matches_lstsq(self):
        rng = np.random.default_rng(7)
        for _ in range(5):
            h = rng.normal(size=5) + 1j * rng.normal(size=5)
            h[0] += 2.0
            fast = zero_forcing_equalizer(h, 21)
            dense = zero_forcing_equalizer(h, 21, method="lstsq")
            assert np.allclose(fast, dense, atol=1e-8)

    def test_canonicalize_phase_batch(self):
        rng = np.random.default_rng(8)
        reference = rng.normal(size=11) + 1j * rng.normal(size=11)
        batch = rng.normal(size=(6, 11)) + 1j * rng.normal(size=(6, 11))
        rotated, thetas = canonicalize_phase_batch(batch, reference)
        for i in range(6):
            scalar_rot, scalar_theta = canonicalize_phase(
                batch[i], reference
            )
            assert np.allclose(rotated[i], scalar_rot, atol=TOL)
            assert abs(thetas[i] - scalar_theta) < TOL


class TestPhyBatchPaths:
    def test_template_delta_reconstruction_bit_exact(
        self, tiny_components, packet_batch
    ):
        engine = get_batch_engine(tiny_components.transmitter, 11)
        for i, seq in enumerate(packet_batch["sequences"]):
            recon = engine._template.copy()
            for start, span in engine.packet_deltas(seq):
                recon[start : start + len(span)] += span
            assert np.array_equal(recon, packet_batch["waveforms"][i])

    def test_batched_synthesis_matches_scalar(
        self, tiny_components, packet_batch
    ):
        engine = get_batch_engine(tiny_components.transmitter, 11)
        deltas = [
            engine.packet_deltas(s) for s in packet_batch["sequences"]
        ]
        rows = engine.synthesize_received(
            deltas,
            packet_batch["channels"],
            packet_batch["phases"],
            packet_batch["seeds"],
            0.05,
        )
        assert np.allclose(rows, packet_batch["received"], atol=TOL)

    def test_batched_full_ls_matches_scalar(
        self, tiny_components, packet_batch
    ):
        engine = get_batch_engine(tiny_components.transmitter, 11)
        deltas = [
            engine.packet_deltas(s) for s in packet_batch["sequences"]
        ]
        estimates = engine.full_ls_estimates(
            packet_batch["received"], deltas
        )
        for i in range(len(deltas)):
            scalar = ls_channel_estimate(
                packet_batch["waveforms"][i],
                packet_batch["received"][i],
                11,
                mode="full",
            )
            assert np.allclose(estimates[i], scalar, atol=TOL)

    def test_batched_preamble_ls_matches_scalar(
        self, tiny_components, packet_batch
    ):
        receiver = tiny_components.receiver
        batch = receiver.preamble_ls_estimate_batch(
            packet_batch["received"], 11
        )
        for i in range(len(batch)):
            scalar = receiver.preamble_ls_estimate(
                packet_batch["received"][i], 11
            )
            assert np.allclose(batch[i], scalar, atol=TOL)

    def test_batched_sync_partial_overlap_lags(self):
        """Short rows where the search window runs past the full-overlap
        range must still match the scalar (partial) correlation."""
        rng = np.random.default_rng(11)
        reference = rng.normal(size=32) + 1j * rng.normal(size=32)
        received = np.zeros((2, 40), dtype=np.complex128)
        received[0, 12:] = reference[:28]  # true delay 12, truncated
        received[1, 3:35] = reference
        offsets, metrics = correlate_sync_batch(received, reference, 24)
        for i in range(2):
            scalar = correlate_sync(received[i], reference, 24)
            assert offsets[i] == scalar.offset
            assert abs(metrics[i] - scalar.metric) < TOL

    def test_batched_sync_matches_scalar(
        self, tiny_components, packet_batch
    ):
        receiver = tiny_components.receiver
        reference = receiver._reference_shr
        window = receiver.config.sync_search_window
        offsets, metrics = correlate_sync_batch(
            packet_batch["received"], reference, window
        )
        for i in range(len(offsets)):
            scalar = correlate_sync(
                packet_batch["received"][i], reference, window
            )
            assert offsets[i] == scalar.offset
            assert abs(metrics[i] - scalar.metric) < TOL

    def test_decode_batch_matches_scalar(
        self, tiny_components, packet_batch
    ):
        receiver = tiny_components.receiver
        # Use realistic (near-true) estimates so equalization is sane.
        estimates = packet_batch["channels"] * np.exp(
            1j * packet_batch["phases"]
        )[:, None]
        batch_results = receiver.decode_batch(
            packet_batch["received"], estimates
        )
        for i, result in enumerate(batch_results):
            scalar = receiver.decode_with_estimate(
                packet_batch["received"][i], estimates[i]
            )
            assert result.psdu == scalar.psdu
            assert result.fcs_ok == scalar.fcs_ok
            assert np.array_equal(result.hard_chips, scalar.hard_chips)
            assert np.allclose(
                result.soft_chips, scalar.soft_chips, atol=TOL
            )

    def test_equalizer_cache_reuses_taps(self, tiny_components):
        receiver = tiny_components.receiver
        receiver._equalizer_cache.clear()
        h = np.array([1.0 + 0j, 0.4, 0.1j])
        delay = equalizer_delay(3, receiver.config.equalizer_taps)
        first = receiver._equalizer_for(h, delay)
        second = receiver._equalizer_for(h, delay)
        assert first is second
        assert len(receiver._equalizer_cache) == 1


class TestGeneratorEquivalence:
    def test_seeded_noise_reproducibility(self, tiny_components):
        """synthesize_received must replay identical samples per seed."""
        measurement = generate_measurement_set(
            tiny_components, 0, engine="batch"
        )
        record = measurement.packets[5]
        first = synthesize_received(tiny_components, record)
        second = synthesize_received(tiny_components, record)
        assert np.array_equal(first, second)

    def test_split_normal_draws_equal_single_draw(self):
        """The batch noise path draws 2n normals in one call; the scalar
        path draws n twice — both must consume the stream identically."""
        a = np.random.default_rng(123)
        b = np.random.default_rng(123)
        split = np.concatenate(
            [a.normal(0.0, 1.0, 500), a.normal(0.0, 1.0, 500)]
        )
        joint = b.normal(0.0, 1.0, 1000)
        assert np.array_equal(split, joint)

    def test_batch_and_scalar_engines_agree(self):
        config = SimulationConfig.tiny()
        comp_scalar = build_components(config)
        comp_batch = build_components(config)
        set_scalar = generate_measurement_set(
            comp_scalar, 2, engine="scalar"
        )
        set_batch = generate_measurement_set(
            comp_batch, 2, engine="batch"
        )
        assert np.array_equal(set_scalar.frames, set_batch.frames)
        for a, b in zip(set_scalar.packets, set_batch.packets):
            assert a.sequence_number == b.sequence_number
            assert a.noise_seed == b.noise_seed
            assert a.phase_offset == b.phase_offset
            assert a.preamble_detected == b.preamble_detected
            assert a.los_blocked == b.los_blocked
            assert np.allclose(a.h_true, b.h_true, atol=TOL)
            assert np.allclose(a.h_ls, b.h_ls, atol=TOL)
            assert np.allclose(a.h_preamble, b.h_preamble, atol=TOL)
            assert np.allclose(
                a.h_ls_canonical, b.h_ls_canonical, atol=TOL
            )
            assert abs(a.preamble_metric - b.preamble_metric) < TOL
            assert abs(a.los_clearance_m - b.los_clearance_m) < TOL

    def test_synthesize_received_batch_matches_scalar(
        self, tiny_components
    ):
        measurement = generate_measurement_set(
            tiny_components, 1, engine="batch"
        )
        records = measurement.packets[:8]
        rows = synthesize_received_batch(tiny_components, records)
        for i, record in enumerate(records):
            scalar = synthesize_received(tiny_components, record)
            assert np.allclose(rows[i], scalar, atol=TOL)
