"""The REST surface end to end, against an in-process daemon.

Capacity jobs keep these tests fast: they exercise the full
submit → claim → run → observe → replay loop through real HTTP on a
loopback socket, but the campaign itself is a pure queueing model (no
PHY generation, no training).
"""

from __future__ import annotations

import pytest

from repro.api import CapacityJob
from repro.serve import ReproDaemon, ServeClient

CAPACITY = {"kind": "capacity", "links": [2, 4], "duration": 0.5}


@pytest.fixture
def daemon(tmp_path):
    instance = ReproDaemon(cache_dir=str(tmp_path), port=0, slots=1)
    instance.start()
    yield instance
    instance.request_stop()
    instance.stop()


@pytest.fixture
def client(daemon):
    return ServeClient(f"http://127.0.0.1:{daemon.port}")


class TestHealthz:
    def test_reports_ok_and_queue_histogram(self, client):
        response = client.healthz()
        assert response.status == 200
        payload = response.json()
        assert payload["status"] == "ok"
        assert payload["slots"] == 1
        assert payload["jobs"] == {}


class TestSubmission:
    def test_submit_runs_and_finishes(self, client):
        response = client.submit(CAPACITY)
        assert response.status == 201
        payload = response.json()
        assert payload["created"] is True
        job_id = payload["job"]["job_id"]
        assert job_id.startswith("capacity-")

        record = client.wait(job_id, timeout=60)
        assert record["state"] == "done"
        assert record["exit_code"] == 0
        assert "modeled point(s)" in record["summary"]

        events = client.events(job_id).json()
        assert events["counts"] == {"done": 3}
        assert {e["status"] for e in events["events"]} == {"done"}

        results = client.results(job_id)
        assert results.status == 200
        assert "Capacity curve" in results.json()["results"]["report"]

    def test_typed_spec_submission(self, client):
        response = client.submit(CapacityJob(links=(2, 4), duration=0.5))
        assert response.status == 201
        # Typed and dict submissions compute the same dedup key.
        assert response.json()["job"]["job_id"] == (
            client.submit(CAPACITY).json()["job"]["job_id"]
        )

    def test_resubmission_of_finished_job_is_pure_replay(self, client):
        job_id = client.submit(CAPACITY).json()["job"]["job_id"]
        first = client.wait(job_id, timeout=60)
        assert " executed, 0 resumed" in first["summary"]

        again = client.submit(CAPACITY)
        assert again.status == 201
        replay = client.wait(job_id, timeout=60)
        assert replay["submissions"] == 2
        assert "steps: 0 executed, 3 resumed from manifest" in (
            replay["summary"]
        )

    def test_options_flow_into_the_run(self, client):
        response = client.submit(CAPACITY, options={"jobs": 2})
        job_id = response.json()["job"]["job_id"]
        record = client.wait(job_id, timeout=60)
        assert record["state"] == "done"
        assert record["options"]["jobs"] == 2


class TestErrorStatuses:
    def test_unknown_kind_is_400(self, client):
        response = client.request("POST", "/v1/jobs", {"kind": "bogus"})
        assert response.status == 400
        assert response.json()["code"] == "invalid"

    def test_unknown_spec_field_is_400(self, client):
        response = client.submit({**CAPACITY, "linkz": [2]})
        assert response.status == 400

    def test_unknown_option_is_400(self, client):
        response = client.submit(CAPACITY, options={"cache_dir": "/x"})
        assert response.status == 400

    def test_unknown_scenario_is_404(self, client):
        response = client.submit({"kind": "sweep", "scenario": "atlantis"})
        assert response.status == 404
        assert response.json()["code"] == "not_found"

    def test_unknown_job_is_404(self, client):
        assert client.job("nope").status == 404
        assert client.events("nope").status == 404
        assert client.results("nope").status == 404

    def test_unknown_route_is_404(self, client):
        assert client.request("GET", "/v2/anything").status == 404

    def test_malformed_body_is_400(self, client):
        import urllib.request

        req = urllib.request.Request(
            f"{client.base_url}/v1/jobs", data=b"not json", method="POST"
        )
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=10)
        assert info.value.code == 400

    def test_delete_finished_job_removes_record(self, client):
        job_id = client.submit(CAPACITY).json()["job"]["job_id"]
        client.wait(job_id, timeout=60)
        response = client.delete(job_id)
        assert response.status == 200
        assert response.json()["deleted"] is True
        assert client.job(job_id).status == 404

    def test_submission_during_shutdown_is_503(self, daemon, client):
        daemon.request_stop()
        response = client.submit(CAPACITY)
        assert response.status == 503
        assert response.json()["code"] == "unavailable"


class TestListing:
    def test_jobs_listing_contains_submissions(self, client):
        job_id = client.submit(CAPACITY).json()["job"]["job_id"]
        listing = client.jobs().json()["jobs"]
        assert [job["job_id"] for job in listing] == [job_id]
