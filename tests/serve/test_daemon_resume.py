"""Crash-resume of the daemon: kill -9 mid-grid, relaunch, byte-identity.

The hard acceptance test of the ISSUE: a real ``repro serve``
subprocess is SIGKILLed in the middle of a grid job; a relaunched
daemon finds the orphaned ``running`` record, requeues it, resumes
the campaign from its manifest (pre-kill steps keep their manifest
timestamps — they are replayed, not re-executed) and the final
``results.json`` is byte-identical to a CLI run of the same grid.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.campaign.cli import main as cli_main
from repro.serve import ReproDaemon, ServeClient

SRC_ROOT = Path(repro.__file__).resolve().parent.parent

SUBMISSION = {"kind": "grid", "grid": "smoke-grid", "suite": "quick"}


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_ROOT)] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    return env


def _launch_daemon(cache: Path, models: Path) -> tuple:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--slots",
            "1",
            "--cache-dir",
            str(cache),
            "--model-dir",
            str(models),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
    )
    deadline = time.monotonic() + 30
    port = None
    drained: list[str] = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        drained.append(line)
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    assert port is not None, "daemon never reported its port"
    # Keep draining stdout so the daemon never blocks on a full pipe.
    thread = threading.Thread(
        target=lambda: drained.extend(iter(proc.stdout.readline, "")),
        daemon=True,
    )
    thread.start()
    return proc, ServeClient(f"http://127.0.0.1:{port}"), drained, thread


def _manifest_steps(campaign_dir: str) -> dict:
    path = Path(campaign_dir) / "manifest.json"
    return json.loads(path.read_text())["steps"]


def test_sigkill_mid_grid_then_relaunch_resumes_byte_identical(tmp_path):
    cache = tmp_path / "serve-cache"
    models = tmp_path / "models"

    proc, client, _, _ = _launch_daemon(cache, models)
    try:
        response = client.submit(SUBMISSION)
        assert response.status == 201
        job_id = response.json()["job"]["job_id"]
        campaign_dir = response.json()["job"]["campaign_dir"]

        # Wait until the grid is genuinely mid-flight: some points
        # done, the campaign far from finished.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            record = client.job(job_id).json()["job"]
            done = record["progress"].get("done", 0)
            if done >= 2:
                break
            assert record["state"] in ("queued", "running")
            time.sleep(0.05)
        else:
            pytest.fail("grid never reached 2 completed steps")
        assert record["state"] == "running"
    finally:
        proc.kill()
        proc.wait(timeout=30)

    # The kill left an orphaned `running` record and a partial manifest.
    orphan = json.loads(
        (cache / "jobs" / f"{job_id}.json").read_text()
    )["job"]
    assert orphan["state"] == "running"
    before = _manifest_steps(campaign_dir)
    done_before = {
        step: record["updated"]
        for step, record in before.items()
        if record["status"] == "done"
    }
    assert done_before
    assert len(done_before) < len(before)

    proc, client, drained, drain_thread = _launch_daemon(cache, models)
    try:
        record = client.wait(job_id, timeout=300)
        assert record["state"] == "done"
        assert record["exit_code"] == 0
        # Pre-kill steps were replayed from the manifest, not re-run:
        # their journal timestamps survived the crash untouched.
        after = _manifest_steps(campaign_dir)
        for step, updated in done_before.items():
            assert after[step]["status"] == "done"
            assert after[step]["updated"] == updated
        resumed = re.search(
            r"steps: (\d+) executed, (\d+) resumed from manifest",
            record["summary"],
        )
        assert resumed is not None
        assert int(resumed.group(2)) >= len(done_before)

        http_results = client.results(job_id).body
    finally:
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        drain_thread.join(timeout=10)
    assert code == 0
    assert any("requeued after daemon restart" in l for l in drained)
    assert any("shutdown complete" in l for l in drained)

    # Byte-identity with a from-scratch CLI run of the same grid.
    cli_cache = tmp_path / "cli-cache"
    assert (
        cli_main(
            [
                "grid",
                "--grid",
                "smoke-grid",
                "--suite",
                "quick",
                "--quiet",
                "--cache-dir",
                str(cli_cache),
                "--model-dir",
                str(models),
            ]
        )
        == 0
    )
    cli_results = (
        cli_cache / "campaigns" / job_id / "results" / "results.json"
    )
    assert cli_results.read_bytes() == http_results


def test_concurrent_identical_submissions_dedup_to_one_campaign(tmp_path):
    daemon = ReproDaemon(cache_dir=str(tmp_path), port=0, slots=2)
    daemon.start()
    try:
        client = ServeClient(f"http://127.0.0.1:{daemon.port}")
        responses: list = [None, None]

        def _post(index: int) -> None:
            responses[index] = client.submit(
                {"kind": "capacity", "links": [2, 4], "duration": 0.5}
            )

        threads = [
            threading.Thread(target=_post, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        ids = {r.json()["job"]["job_id"] for r in responses}
        assert len(ids) == 1
        job_id = ids.pop()
        record = client.wait(job_id, timeout=60)
        assert record["state"] == "done"
        assert record["submissions"] == 2
        # One campaign directory serves both submitters.
        campaigns = list((tmp_path / "campaigns").iterdir())
        assert [c.name for c in campaigns] == [job_id]
        # Exactly one submission created the job; the other deduped
        # (or both raced into the requeue path — never two records).
        assert len(list((tmp_path / "jobs").glob("*.json"))) == 1
    finally:
        daemon.request_stop()
        daemon.stop()
