"""The persistent job queue: dedup, priority, recovery, lifecycle."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConflictError, NotFoundError
from repro.serve.queue import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_QUEUED,
    JOB_RUNNING,
    JobQueue,
    JobRecord,
)


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "jobs")


def _submit(queue, job_id="job-a", priority=0, **over):
    return queue.submit(
        job_id=job_id,
        kind=over.get("kind", "capacity"),
        spec=over.get("spec", {"kind": "capacity", "links": [2]}),
        options=over.get("options", {"jobs": 1}),
        priority=priority,
        campaign_dir=over.get("campaign_dir", "/tmp/none"),
    )


class TestPersistence:
    def test_record_survives_a_fresh_queue_instance(self, queue, tmp_path):
        record, created = _submit(queue)
        assert created
        reloaded = JobQueue(tmp_path / "jobs").get("job-a")
        assert reloaded == record
        assert reloaded.state == JOB_QUEUED

    def test_record_file_is_versioned_json(self, queue, tmp_path):
        _submit(queue)
        data = json.loads((tmp_path / "jobs" / "job-a.json").read_text())
        assert data["version"] == 1
        assert data["job"]["job_id"] == "job-a"

    def test_round_trip_preserves_every_field(self):
        record = JobRecord(
            job_id="x",
            kind="grid",
            spec={"grid": "smoke-grid"},
            options={"jobs": 2},
            priority=5,
            state=JOB_DONE,
            submissions=3,
            exit_code=0,
            summary="steps: 4 executed",
        )
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_unknown_job_raises(self, queue):
        with pytest.raises(NotFoundError, match="unknown job"):
            queue.get("missing")

    def test_traversal_job_ids_rejected(self, queue):
        with pytest.raises(NotFoundError):
            queue.get("../escape")


class TestDedup:
    def test_second_submission_dedups_onto_queued_job(self, queue):
        first, created_first = _submit(queue)
        second, created_second = _submit(queue)
        assert created_first and not created_second
        assert second.job_id == first.job_id
        assert second.submissions == 2

    def test_dedup_keeps_highest_priority(self, queue):
        _submit(queue, priority=1)
        record, created = _submit(queue, priority=7)
        assert not created
        assert record.priority == 7

    def test_resubmission_of_finished_job_requeues(self, queue):
        _submit(queue)
        queue.claim_next(pid=1)
        queue.mark("job-a", JOB_DONE, exit_code=0)
        record, created = _submit(queue)
        assert created
        assert record.state == JOB_QUEUED
        assert record.submissions == 2
        assert "resubmitted after done" in record.detail
        assert record.exit_code is None


class TestClaimOrdering:
    def test_claims_by_priority_then_age_then_id(self, queue):
        _submit(queue, job_id="old-low", priority=0)
        _submit(queue, job_id="new-high", priority=5)
        _submit(queue, job_id="also-low", priority=0)
        assert queue.claim_next(pid=1).job_id == "new-high"
        # Equal priority: submission order wins.
        assert queue.claim_next(pid=1).job_id == "old-low"
        assert queue.claim_next(pid=1).job_id == "also-low"
        assert queue.claim_next(pid=1) is None

    def test_claim_marks_running_with_pid(self, queue):
        _submit(queue)
        record = queue.claim_next(pid=4242)
        assert record.state == JOB_RUNNING
        assert record.pid == 4242
        assert record.started_at is not None


class TestRecovery:
    def test_running_jobs_requeue_on_recover(self, queue):
        _submit(queue, job_id="crashed")
        _submit(queue, job_id="finished")
        queue.claim_next(pid=1)  # claims "crashed"
        queue.mark("finished", JOB_DONE)
        assert queue.recover() == ["crashed"]
        record = queue.get("crashed")
        assert record.state == JOB_QUEUED
        assert record.detail == "requeued after daemon restart"
        assert record.pid is None
        assert queue.get("finished").state == JOB_DONE

    def test_recover_is_idempotent(self, queue):
        _submit(queue)
        queue.claim_next(pid=1)
        assert queue.recover() == ["job-a"]
        assert queue.recover() == []


class TestLifecycle:
    def test_cancel_queued_job(self, queue):
        _submit(queue)
        assert queue.cancel("job-a").state == JOB_CANCELLED

    def test_cancel_running_job_conflicts(self, queue):
        _submit(queue)
        queue.claim_next(pid=1)
        with pytest.raises(ConflictError, match="running"):
            queue.cancel("job-a")

    def test_delete_refuses_active_jobs(self, queue):
        _submit(queue)
        with pytest.raises(ConflictError):
            queue.delete("job-a")
        queue.claim_next(pid=1)
        with pytest.raises(ConflictError):
            queue.delete("job-a")

    def test_delete_removes_finished_record(self, queue):
        _submit(queue)
        queue.claim_next(pid=1)
        queue.mark("job-a", JOB_DONE)
        queue.delete("job-a")
        with pytest.raises(NotFoundError):
            queue.get("job-a")

    def test_counts_histogram(self, queue):
        _submit(queue, job_id="a")
        _submit(queue, job_id="b")
        queue.claim_next(pid=1)
        assert queue.counts() == {JOB_QUEUED: 1, JOB_RUNNING: 1}
