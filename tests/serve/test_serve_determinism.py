"""The determinism contract of campaign-as-a-service.

A grid submitted over HTTP must produce byte-identical artifacts to
the same grid run via the CLI — same per-point records, same
aggregate ``results.json`` (served raw, never re-serialized), same
report.  And resubmitting the finished job must be a pure replay:
zero steps executed, the "100% cache hits" sentinel in the stored
summary.
"""

from __future__ import annotations

import pytest

from repro.campaign.cli import main as cli_main
from repro.campaign.grid import GridSpec, register_grid
from repro.serve import ReproDaemon, ServeClient

GRID_NAME = "serve-determinism-grid"


@pytest.fixture(scope="module", autouse=True)
def _grid():
    register_grid(
        GridSpec(
            name=GRID_NAME,
            description="serve-vs-CLI byte-identity fixture",
            base="smoke",
            axes=(("snr_db", (6.0, 12.0)),),
        ),
        replace=True,
    )


SUBMISSION = {"kind": "grid", "grid": GRID_NAME, "suite": "quick"}


def _artifacts(cache_root):
    campaigns = sorted((cache_root / "campaigns").iterdir())
    assert len(campaigns) == 1
    directory = campaigns[0]
    results = sorted(
        path
        for path in (directory / "results").iterdir()
        if path.suffix == ".json"
    )
    return directory, results


def test_http_grid_matches_cli_grid_byte_for_byte(tmp_path, capsys):
    cli_cache = tmp_path / "cli-cache"
    serve_cache = tmp_path / "serve-cache"
    models = tmp_path / "models"

    code = cli_main(
        [
            "grid",
            "--grid",
            GRID_NAME,
            "--suite",
            "quick",
            "--cache-dir",
            str(cli_cache),
            "--model-dir",
            str(models),
        ]
    )
    capsys.readouterr()
    assert code == 0

    daemon = ReproDaemon(
        cache_dir=str(serve_cache), model_dir=str(models), port=0, slots=1
    )
    daemon.start()
    try:
        client = ServeClient(f"http://127.0.0.1:{daemon.port}")
        response = client.submit(SUBMISSION)
        assert response.status == 201
        job_id = response.json()["job"]["job_id"]
        record = client.wait(job_id, timeout=300)
        assert record["state"] == "done"

        cli_dir, cli_results = _artifacts(cli_cache)
        serve_dir, serve_results = _artifacts(serve_cache)

        # Same spec -> same campaign directory key on both sides.
        assert cli_dir.name == serve_dir.name == job_id

        # Every result artifact is byte-identical across transports.
        assert [p.name for p in cli_results] == [
            p.name for p in serve_results
        ]
        for cli_path, serve_path in zip(cli_results, serve_results):
            assert cli_path.read_bytes() == serve_path.read_bytes()

        # GET /results serves the raw aggregate bytes, not a re-dump.
        body = client.results(job_id)
        assert body.status == 200
        assert body.body == (
            cli_dir / "results" / "results.json"
        ).read_bytes()

        # Resubmission is a pure replay over the manifest.
        assert client.submit(SUBMISSION).status == 201
        replay = client.wait(job_id, timeout=120)
        assert replay["submissions"] == 2
        assert "steps: 0 executed," in replay["summary"]
        assert (
            "no measurement sets regenerated (100% cache hits)"
            in replay["summary"]
        )
        assert client.results(job_id).body == body.body
    finally:
        daemon.request_stop()
        daemon.stop()
