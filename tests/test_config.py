"""Tests for configuration validation and presets."""

import dataclasses

import pytest

from repro.config import (
    CameraConfig,
    ChannelConfig,
    DatasetConfig,
    KalmanConfig,
    MobilityConfig,
    PhyConfig,
    ReceiverConfig,
    RoomConfig,
    SimulationConfig,
    VVDConfig,
)
from repro.errors import ConfigurationError


class TestPhyConfig:
    def test_paper_defaults(self):
        phy = PhyConfig()
        assert phy.sample_rate_hz == 8e6
        assert phy.psdu_chip_count == 8128
        assert phy.psdu_bit_count == 1016
        assert phy.carrier_frequency_hz == 2.48e9  # channel 26

    def test_channel_frequency_mapping(self):
        assert PhyConfig(channel_number=11).carrier_frequency_hz == 2.405e9

    def test_invalid_channel(self):
        with pytest.raises(ConfigurationError):
            _ = PhyConfig(channel_number=5).carrier_frequency_hz

    def test_invalid_psdu(self):
        with pytest.raises(ConfigurationError):
            PhyConfig(psdu_bytes=0)
        with pytest.raises(ConfigurationError):
            PhyConfig(psdu_bytes=200)

    def test_invalid_spc(self):
        with pytest.raises(ConfigurationError):
            PhyConfig(samples_per_chip=1)


class TestChannelConfig:
    def test_pre_cursor_bounds(self):
        with pytest.raises(ConfigurationError):
            ChannelConfig(pre_cursor=11, num_taps=11)

    def test_positive_stretch(self):
        with pytest.raises(ConfigurationError):
            ChannelConfig(delay_stretch=0)


class TestRoomConfig:
    def test_movement_area_inside_room(self):
        with pytest.raises(ConfigurationError):
            RoomConfig(movement_area=(0, 0, 100, 100))

    def test_device_inside_room(self):
        with pytest.raises(ConfigurationError):
            RoomConfig(tx_position=(-1, 0, 0))


class TestCameraConfig:
    def test_crop_must_fit(self):
        with pytest.raises(ConfigurationError):
            CameraConfig(crop_top=50, output_shape=(50, 90))

    def test_frame_interval(self):
        assert CameraConfig(fps=30.0).frame_interval_s == pytest.approx(
            1 / 30
        )


class TestOtherConfigs:
    def test_mobility_speed_order(self):
        with pytest.raises(ConfigurationError):
            MobilityConfig(speed_min_mps=2.0, speed_max_mps=1.0)

    def test_receiver_threshold(self):
        with pytest.raises(ConfigurationError):
            ReceiverConfig(preamble_detection_threshold=0.0)

    def test_dataset_needs_headroom(self):
        with pytest.raises(ConfigurationError):
            DatasetConfig(packets_per_set=10, skip_initial=10)

    def test_vvd_pooling_values(self):
        with pytest.raises(ConfigurationError):
            VVDConfig(pooling="median")

    def test_kalman_default_in_orders(self):
        with pytest.raises(ConfigurationError):
            KalmanConfig(default_order=7, orders=(1, 5, 20))


class TestPresets:
    def test_paper_scale_dimensions(self):
        config = SimulationConfig.paper_scale()
        assert config.phy.psdu_bytes == 127
        assert config.dataset.num_sets == 15
        assert config.dataset.packets_per_set * 15 == 22710  # ~22,704
        assert config.vvd.epochs == 200

    def test_reduced_keeps_structure(self):
        config = SimulationConfig.reduced()
        assert config.dataset.num_sets == 15
        assert config.phy.psdu_bytes == 127

    def test_tiny_is_small(self):
        config = SimulationConfig.tiny()
        assert config.dataset.num_sets <= 5
        assert config.dataset.packets_per_set <= 30

    def test_replace_round_trip(self):
        config = SimulationConfig.tiny()
        changed = config.replace(seed=777)
        assert changed.seed == 777
        assert changed.phy == config.phy

    def test_configs_are_frozen(self):
        config = SimulationConfig.tiny()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.phy.psdu_bytes = 64


class TestMobilityNewFields:
    def test_speed_profile_validated(self):
        assert MobilityConfig().speed_profile == "uniform"
        MobilityConfig(speed_profile="heterogeneous")
        with pytest.raises(ConfigurationError):
            MobilityConfig(speed_profile="chaotic")

    def test_group_spread_positive(self):
        with pytest.raises(ConfigurationError):
            MobilityConfig(group_spread_m=0.0)

    def test_grouped_trajectory_accepted(self):
        assert (
            MobilityConfig(trajectory="grouped").trajectory == "grouped"
        )
