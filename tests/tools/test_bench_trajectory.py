"""Merged benchmark trajectories: merge semantics, migration, locking."""

from __future__ import annotations

import json
import threading

from tools.bench_trajectory import (
    FORMAT_VERSION,
    append_entry,
    host_metadata,
    load_history,
    merge_entry,
)


class TestMergeEntry:
    def test_appends_under_bench_key(self):
        history = merge_entry(
            {"version": FORMAT_VERSION, "benches": {}},
            "stream",
            {"speedup": 2.0, "timestamp": 10.0},
        )
        assert [e["speedup"] for e in history["benches"]["stream"]] == [
            2.0
        ]
        assert history["benches"]["stream"][0]["bench"] == "stream"

    def test_orders_by_timestamp(self):
        history = {"version": FORMAT_VERSION, "benches": {}}
        for stamp in (30.0, 10.0, 20.0):
            history = merge_entry(
                history, "b", {"timestamp": stamp, "v": stamp}
            )
        assert [e["timestamp"] for e in history["benches"]["b"]] == [
            10.0,
            20.0,
            30.0,
        ]

    def test_same_timestamp_replaces_instead_of_duplicating(self):
        history = merge_entry(
            {"version": FORMAT_VERSION, "benches": {}},
            "b",
            {"timestamp": 5.0, "v": "old"},
        )
        history = merge_entry(history, "b", {"timestamp": 5.0, "v": "new"})
        assert len(history["benches"]["b"]) == 1
        assert history["benches"]["b"][0]["v"] == "new"

    def test_does_not_mutate_input(self):
        original = {"version": FORMAT_VERSION, "benches": {"b": []}}
        merge_entry(original, "b", {"timestamp": 1.0})
        assert original["benches"]["b"] == []

    def test_missing_timestamp_is_stamped(self):
        history = merge_entry(
            {"version": FORMAT_VERSION, "benches": {}}, "b", {"v": 1}
        )
        assert history["benches"]["b"][0]["timestamp"] > 0

    def test_benches_are_independent(self):
        history = merge_entry(
            {"version": FORMAT_VERSION, "benches": {}},
            "a",
            {"timestamp": 1.0},
        )
        history = merge_entry(history, "b", {"timestamp": 1.0})
        assert set(history["benches"]) == {"a", "b"}


class TestLoadHistory:
    def test_missing_file_is_empty(self, tmp_path):
        history = load_history(tmp_path / "nope.json")
        assert history == {"version": FORMAT_VERSION, "benches": {}}

    def test_corrupt_file_is_empty(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert load_history(path)["benches"] == {}

    def test_legacy_list_migrates_under_bench_keys(self, tmp_path):
        """The pre-merge BENCH_stream.json layout imports cleanly."""
        path = tmp_path / "BENCH_stream.json"
        path.write_text(
            json.dumps(
                [
                    {"bench": "stream_throughput", "timestamp": 2.0},
                    {"bench": "stream_throughput", "timestamp": 1.0},
                    {"timestamp": 3.0},
                ]
            )
        )
        history = load_history(path)
        assert [
            e["timestamp"]
            for e in history["benches"]["stream_throughput"]
        ] == [1.0, 2.0]
        assert history["benches"]["unknown"][0]["timestamp"] == 3.0


class TestAppendEntry:
    def test_roundtrip_accumulates(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        append_entry("b", {"timestamp": 1.0, "v": 1}, path)
        append_entry("b", {"timestamp": 2.0, "v": 2}, path)
        history = load_history(path)
        assert [e["v"] for e in history["benches"]["b"]] == [1, 2]

    def test_concurrent_appends_all_survive(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        threads = [
            threading.Thread(
                target=append_entry,
                args=("b", {"timestamp": float(i)}, path),
            )
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stamps = [
            e["timestamp"] for e in load_history(path)["benches"]["b"]
        ]
        assert stamps == [float(i) for i in range(8)]


class TestHostMetadata:
    def test_new_entries_are_stamped_with_host(self, monkeypatch):
        monkeypatch.setenv("REPRO_THROUGHPUT_FLOOR", "3.0")
        monkeypatch.setenv("REPRO_GRID_FLOOR", "1.1")
        monkeypatch.delenv("REPRO_STREAM_FLOOR", raising=False)
        history = merge_entry(
            {"version": FORMAT_VERSION, "benches": {}},
            "stream_throughput",
            {"timestamp": 1.0, "speedup": 3.5},
        )
        (entry,) = history["benches"]["stream_throughput"]
        host = entry["host"]
        assert host["cpu_count"] >= 1
        assert host["platform"]
        assert host["python"]
        assert host["floors"] == {
            "REPRO_GRID_FLOOR": "1.1",
            "REPRO_THROUGHPUT_FLOOR": "3.0",
        }

    def test_caller_supplied_host_is_preserved(self):
        history = merge_entry(
            {"version": FORMAT_VERSION, "benches": {}},
            "b",
            {"timestamp": 1.0, "host": {"cpu_count": 128}},
        )
        (entry,) = history["benches"]["b"]
        assert entry["host"] == {"cpu_count": 128}

    def test_legacy_entries_without_host_survive(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        legacy = {
            "version": FORMAT_VERSION,
            "benches": {"b": [{"timestamp": 1.0, "speedup": 2.0}]},
        }
        path.write_text(json.dumps(legacy))
        append_entry("b", {"timestamp": 2.0, "speedup": 2.1}, path)
        entries = load_history(path)["benches"]["b"]
        assert "host" not in entries[0]  # legacy entry untouched
        assert "host" in entries[1]
        assert [e["timestamp"] for e in entries] == [1.0, 2.0]

    def test_host_metadata_only_reads_floor_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "4")
        monkeypatch.setenv("REPRO_TRAIN_FLOOR", "1.2")
        floors = host_metadata()["floors"]
        assert "REPRO_TRAIN_FLOOR" in floors
        assert "REPRO_BENCH_WORKERS" not in floors
