"""Tests for the depth camera, preprocessing and LED synchronization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CameraConfig, ChannelConfig, RoomConfig
from repro.errors import ShapeError, SynchronizationError
from repro.vision import (
    DepthCamera,
    FrameTimeline,
    block_downsample,
    crop_depth,
    match_packet_to_frame,
    normalize_depth,
    preprocess_720p,
    preprocess_depth,
)
from repro.vision.rendering import (
    ray_box_intersection,
    ray_cylinder_intersection,
    ray_room_intersection,
)


@pytest.fixture(scope="module")
def camera():
    return DepthCamera(CameraConfig(), RoomConfig(), ChannelConfig())


class TestRayPrimitives:
    def test_ray_hits_box_front(self):
        t = ray_box_intersection(
            np.array([0.0, 0.0, 0.0]),
            np.array([[1.0, 0.0, 0.0]]),
            np.array([2.0, -1.0, -1.0]),
            np.array([3.0, 1.0, 1.0]),
        )
        assert t[0] == pytest.approx(2.0)

    def test_ray_misses_box(self):
        t = ray_box_intersection(
            np.array([0.0, 0.0, 0.0]),
            np.array([[0.0, 1.0, 0.0]]),
            np.array([2.0, -1.0, -1.0]),
            np.array([3.0, 1.0, 1.0]),
        )
        assert np.isinf(t[0])

    def test_ray_hits_cylinder_side(self):
        t = ray_cylinder_intersection(
            np.array([0.0, 0.0, 1.0]),
            np.array([[1.0, 0.0, 0.0]]),
            np.array([5.0, 0.0]),
            radius=0.5,
            height=2.0,
        )
        assert t[0] == pytest.approx(4.5)

    def test_ray_over_cylinder_head_misses(self):
        t = ray_cylinder_intersection(
            np.array([0.0, 0.0, 3.0]),
            np.array([[1.0, 0.0, 0.0]]),
            np.array([5.0, 0.0]),
            radius=0.5,
            height=2.0,
        )
        assert np.isinf(t[0])

    def test_ray_hits_cylinder_cap_from_above(self):
        t = ray_cylinder_intersection(
            np.array([5.0, 0.0, 5.0]),
            np.array([[0.0, 0.0, -1.0]]),
            np.array([5.0, 0.0]),
            radius=0.5,
            height=2.0,
        )
        assert t[0] == pytest.approx(3.0)

    def test_room_interior_hit(self):
        t = ray_room_intersection(
            np.array([4.0, 3.0, 1.5]),
            np.array([[0.0, 0.0, -1.0]]),
            8.0,
            6.0,
            3.0,
        )
        assert t[0] == pytest.approx(1.5)

    def test_cylinder_rejects_bad_args(self):
        with pytest.raises(ShapeError):
            ray_cylinder_intersection(
                np.zeros(3), np.ones((1, 3)), np.zeros(2), -1.0, 2.0
            )


class TestDepthCamera:
    def test_render_shape(self, camera):
        image = camera.render((4.0, 3.0))
        assert image.shape == CameraConfig().render_shape
        assert np.all(np.isfinite(image))

    def test_human_closer_than_background(self, camera):
        with_human = camera.render((4.0, 3.0))
        static = camera.static_depth
        assert np.all(with_human <= static + 1e-9)
        assert np.any(with_human < static - 0.1)

    def test_human_position_changes_image(self, camera):
        a = camera.render((3.0, 2.0))
        b = camera.render((5.0, 4.0))
        assert np.max(np.abs(a - b)) > 0.5

    def test_same_position_same_image(self, camera):
        assert np.array_equal(
            camera.render((4.2, 2.8)), camera.render((4.2, 2.8))
        )

    def test_depth_clipped_at_max(self, camera):
        assert camera.render((4.0, 3.0)).max() <= CameraConfig().max_depth_m


class TestPreprocessing:
    def test_block_downsample_means(self):
        image = np.arange(16, dtype=float).reshape(4, 4)
        down = block_downsample(image, 2)
        assert down.shape == (2, 2)
        assert down[0, 0] == pytest.approx(np.mean([0, 1, 4, 5]))

    def test_downsample_drops_partial_blocks(self):
        image = np.ones((7, 9))
        assert block_downsample(image, 2).shape == (3, 4)

    def test_downsample_rejects_tiny(self):
        with pytest.raises(ShapeError):
            block_downsample(np.ones((3, 3)), 4)

    def test_crop_window(self):
        config = CameraConfig()
        image = np.arange(72 * 108, dtype=float).reshape(72, 108)
        cropped = crop_depth(image, config)
        assert cropped.shape == config.output_shape
        assert cropped[0, 0] == image[config.crop_top, config.crop_left]

    def test_preprocess_depth_is_crop(self, camera):
        config = CameraConfig()
        image = camera.render((4.0, 3.0))
        assert preprocess_depth(image, config).shape == config.output_shape

    def test_720p_pipeline(self):
        config = CameraConfig()
        image = np.random.default_rng(0).uniform(0, 10, (720, 1080))
        out = preprocess_720p(image, config)
        assert out.shape == config.output_shape

    def test_720p_wrong_shape_rejected(self):
        with pytest.raises(ShapeError):
            preprocess_720p(np.ones((100, 100)), CameraConfig())

    def test_normalize_depth(self):
        out = normalize_depth(np.array([[0.0, 6.0, 24.0]]), 12.0)
        assert np.allclose(out, [[0.0, 0.5, 1.0]])

    @given(factor=st.sampled_from([2, 3, 5, 10]))
    @settings(max_examples=10, deadline=None)
    def test_property_downsample_preserves_range(self, factor):
        gen = np.random.default_rng(factor)
        image = gen.uniform(1.0, 9.0, (60, 60))
        down = block_downsample(image, factor)
        assert down.min() >= 1.0 and down.max() <= 9.0


class TestLEDSynchronization:
    def test_candidates_are_two_typically(self):
        timeline = FrameTimeline(300, 1 / 30)
        candidates = timeline.candidate_frames(0.1)
        assert len(candidates) == 2

    def test_match_is_containing_frame(self):
        timeline = FrameTimeline(300, 1 / 30)
        frame = match_packet_to_frame(timeline, 0.1)
        start, end = timeline.frame_interval(frame)
        assert start <= 0.1 < end

    def test_all_paper_packet_times_resolve(self):
        # Packets every 100 ms against 30 fps frames (Fig. 3 scenario).
        timeline = FrameTimeline(400, 1 / 30)
        for k in range(1, 100):
            t = k * 0.1
            frame = match_packet_to_frame(timeline, t)
            start, end = timeline.frame_interval(frame)
            assert start <= t < end

    def test_out_of_range_raises(self):
        timeline = FrameTimeline(10, 1 / 30)
        with pytest.raises(SynchronizationError):
            match_packet_to_frame(timeline, 100.0)

    def test_bad_construction(self):
        with pytest.raises(ShapeError):
            FrameTimeline(0, 1 / 30)
        with pytest.raises(ShapeError):
            FrameTimeline(10, 0.0)
