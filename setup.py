"""Legacy setup shim: the offline environment lacks the `wheel` package, so
PEP 660 editable installs are unavailable; this enables `setup.py develop`.

Also registers the ``repro`` console script so the campaign CLI installs
alongside ``python -m repro``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-vvd",
    version="1.0.0",
    description=(
        "Reproduction of Veni Vidi Dixi (CoNEXT 2019): channel "
        "estimation from depth images, with campaign orchestration"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "repro = repro.campaign.cli:main",
        ]
    },
)
