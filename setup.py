"""Legacy setup shim: the offline environment lacks the `wheel` package, so
PEP 660 editable installs are unavailable; this enables `setup.py develop`."""

from setuptools import setup

setup()
