#!/usr/bin/env python3
"""LoS blockage monitoring from depth images (the Sec. 6.4 insight).

The paper observes that VVD's residual errors cluster at LoS/NLoS
transitions and suggests explicit blockage detection as an improvement.
This example trains the :class:`repro.core.BlockageDetector` extension
and reports its accuracy, then shows how blockage correlates with packet
loss — the Fig. 15 burst-error story.

Usage::

    python examples/blockage_monitor.py
"""

import numpy as np

from repro.config import SimulationConfig
from repro.core import BlockageDetector
from repro.dataset import (
    build_components,
    generate_dataset,
    rotating_set_combinations,
)
from repro.estimation import PreviousEstimation
from repro.experiments import EvaluationRunner
from repro.experiments.reporting import format_timeline


def main() -> None:
    config = SimulationConfig.tiny()
    print("Simulating campaign...")
    components = build_components(config)
    sets = generate_dataset(config, components, verbose=True)

    train_sets, test_sets = sets[:-1], sets[-1:]
    detector = BlockageDetector().fit(train_sets, config)
    accuracy = detector.accuracy(test_sets, config)
    baseline = np.mean(
        [not p.los_blocked for s in test_sets for p in s.packets]
    )
    print(
        f"\nblockage detector accuracy: {accuracy:.2%} "
        f"(always-'clear' baseline: {baseline:.2%})"
    )

    # Correlate blockage with decoding failures of a stale estimator.
    runner = EvaluationRunner(components, sets)
    combination = rotating_set_combinations(config.dataset.num_sets)[0]
    result = runner.run_combination(
        combination, [PreviousEstimation(5, 0.1)], skip_initial=0
    )
    outcomes = result.technique("500ms Previous").outcomes
    test_set = sets[combination.test_index]
    print("\nstale-estimate decoding vs blockage:")
    print(
        format_timeline(
            [not o.packet_error for o in outcomes],
            [p.los_blocked for p in test_set.packets],
            width=len(outcomes),
        )
    )


if __name__ == "__main__":
    main()
