#!/usr/bin/env python3
"""Train a VVD model and inspect what it learned.

Trains the Fig. 8 CNN on a small campaign, prints the training curve,
then compares VVD's channel estimates against the Kalman tracker on a
held-out test set — the paper's core claim in one script.

Usage::

    python examples/train_vvd.py [--reduced]

``--reduced`` uses the benchmark-scale preset (minutes); the default tiny
preset finishes in tens of seconds.
"""

import argparse

from repro.config import SimulationConfig
from repro.core import VVDEstimator
from repro.dataset import (
    build_components,
    generate_dataset,
    rotating_set_combinations,
)
from repro.estimation import GroundTruth, KalmanEstimator
from repro.experiments import EvaluationRunner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reduced",
        action="store_true",
        help="use the benchmark-scale preset (slower, more faithful)",
    )
    args = parser.parse_args()
    config = (
        SimulationConfig.reduced()
        if args.reduced
        else SimulationConfig.tiny()
    )

    print("Simulating campaign...")
    components = build_components(config)
    sets = generate_dataset(config, components, verbose=True)
    runner = EvaluationRunner(components, sets)
    combination = rotating_set_combinations(config.dataset.num_sets)[0]

    vvd = VVDEstimator(horizon_frames=0, verbose=True)
    kalman = KalmanEstimator(config.kalman.default_order)
    print(f"\nTraining VVD on combination {combination.number}...")
    result = runner.run_combination(
        combination, [vvd, kalman, GroundTruth()]
    )

    history = vvd.trained.history
    print(
        f"\nbest validation epoch: {history.best_epoch + 1} "
        f"(val MSE {history.best_val_loss:.3e})"
    )
    print(f"model parameters: {vvd.trained.model.num_parameters()}")

    print(f"\n{'technique':<22} {'PER':>8} {'CER':>8} {'est. MSE':>10}")
    for name, technique in result.techniques.items():
        print(
            f"{name:<22} {technique.per:>8.3f} {technique.cer:>8.4f} "
            f"{technique.mse:>10.2e}"
        )


if __name__ == "__main__":
    main()
