#!/usr/bin/env python3
"""Train a VVD model and inspect what it learned.

Trains the Fig. 8 CNN on a small campaign, prints the training curve,
then compares VVD's channel estimates against the Kalman tracker on a
held-out test set — the paper's core claim in one script.

Both expensive artifacts resolve through the campaign's
content-addressed stores: the measurement sets through the dataset
cache and the trained CNN through the model checkpoint registry, so a
second run of this script trains nothing and finishes in seconds.

Usage::

    python examples/train_vvd.py [--reduced] [--cache-dir D] [--model-dir D]

``--reduced`` uses the benchmark-scale preset (minutes); the default tiny
preset finishes in tens of seconds.
"""

import argparse

from repro.campaign import DatasetCache, ModelCheckpointRegistry
from repro.config import SimulationConfig
from repro.core import VVDEstimator
from repro.dataset import build_components, rotating_set_combinations
from repro.estimation import GroundTruth, KalmanEstimator
from repro.experiments import EvaluationRunner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reduced",
        action="store_true",
        help="use the benchmark-scale preset (slower, more faithful)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="dataset cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-vvd/datasets)",
    )
    parser.add_argument(
        "--model-dir",
        default=None,
        help="model checkpoint registry root (default: $REPRO_MODEL_DIR "
        "or ~/.cache/repro-vvd/models)",
    )
    args = parser.parse_args()
    config = (
        SimulationConfig.reduced()
        if args.reduced
        else SimulationConfig.tiny()
    )

    cache = DatasetCache(args.cache_dir)
    registry = ModelCheckpointRegistry(args.model_dir)

    print("Resolving campaign through the dataset cache...")
    components = build_components(config)
    sets = cache.load_or_generate(config, verbose=True)
    runner = EvaluationRunner(components, sets)
    combination = rotating_set_combinations(config.dataset.num_sets)[0]

    vvd = VVDEstimator(horizon_frames=0, verbose=True, checkpoints=registry)
    kalman = KalmanEstimator(config.kalman.default_order)
    print(f"\nResolving VVD for combination {combination.number}...")
    result = runner.run_combination(
        combination, [vvd, kalman, GroundTruth()]
    )

    history = vvd.trained.history
    print(
        f"\nbest validation epoch: {history.best_epoch + 1} "
        f"(val MSE {history.best_val_loss:.3e})"
    )
    print(f"model parameters: {vvd.trained.model.num_parameters()}")
    print(f"dataset cache: {cache.stats.summary()}")
    print(f"model registry: {registry.stats.summary()}")

    print(f"\n{'technique':<22} {'PER':>8} {'CER':>8} {'est. MSE':>10}")
    for name, technique in result.techniques.items():
        print(
            f"{name:<22} {technique.per:>8.3f} {technique.cer:>8.4f} "
            f"{technique.mse:>10.2e}"
        )


if __name__ == "__main__":
    main()
