#!/usr/bin/env python3
"""Quickstart: simulate a tiny measurement campaign and compare
channel-estimation techniques on one train/validation/test split.

Runs in well under a minute; see ``full_evaluation.py`` for the
paper-shaped experiment.

Usage::

    python examples/quickstart.py
"""

from repro.config import SimulationConfig
from repro.dataset import (
    build_components,
    generate_dataset,
    rotating_set_combinations,
)
from repro.experiments import EvaluationRunner, build_baseline_suite


def main() -> None:
    config = SimulationConfig.tiny()
    print("Simulating the measurement campaign (tiny preset)...")
    components = build_components(config)
    sets = generate_dataset(config, components, verbose=True)

    runner = EvaluationRunner(components, sets)
    combination = rotating_set_combinations(config.dataset.num_sets)[0]
    print(
        f"\nEvaluating combination {combination.number}: "
        f"train={combination.training} val={combination.validation} "
        f"test={combination.test}"
    )
    result = runner.run_combination(
        combination, build_baseline_suite(config)
    )

    print(f"\n{'technique':<26} {'PER':>8} {'CER':>8} {'MSE':>10}")
    for name, technique in result.techniques.items():
        mse = f"{technique.mse:.2e}" if technique.mse == technique.mse else "-"
        print(
            f"{name:<26} {technique.per:>8.3f} {technique.cer:>8.4f} "
            f"{mse:>10}"
        )
    print(
        "\nGround Truth should be best; Standard Decoding and stale "
        "estimates worst — the Table 1 story."
    )


if __name__ == "__main__":
    main()
