#!/usr/bin/env python3
"""Regenerate the paper's full evaluation (Figs. 12-17, Tables 1-2).

This is the EXPERIMENTS.md driver: it builds the evaluation bundle (the
ten-technique suite over Table 2 combinations), prints every figure as an
ASCII table, and reports wall-clock cost.

Usage::

    python examples/full_evaluation.py [--combinations N] [--tiny]

``--combinations`` limits the Table 2 rows (default 3 keeps the run in
minutes; pass 15 for the full cross-validation).
"""

import argparse
import time

from repro.config import SimulationConfig
from repro.experiments.bundle import build_evaluation_bundle
from repro.experiments.figures import (
    fig5,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    table1,
    table2,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--combinations", type=int, default=3)
    parser.add_argument(
        "--tiny", action="store_true", help="use the tiny preset (smoke run)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for dataset generation",
    )
    args = parser.parse_args()
    config = (
        SimulationConfig.tiny() if args.tiny else SimulationConfig.reduced()
    )

    start = time.time()
    print("Building evaluation bundle (dataset + VVD training + decode)...")
    bundle = build_evaluation_bundle(
        config,
        num_combinations=args.combinations,
        verbose=True,
        workers=args.workers,
    )
    print(f"bundle built in {time.time() - start:.0f}s\n")

    print(table2.render(bundle.sets))
    print()
    print(table1.render(bundle))
    print()
    print(fig5.render(fig5.generate(bundle.sets[1], bundle.sets[2:])))
    print()
    print(fig12.render(bundle))
    print()
    print(fig13.render(bundle))
    print()
    print(fig14.render(bundle))
    print()
    print(fig15.render(fig15.generate(bundle)))
    print()
    aging = fig16.generate(bundle)
    print(fig16.render(aging))
    print()
    print(fig17.render(aging))
    print(f"\ntotal wall clock: {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
