#!/usr/bin/env python3
"""Regenerate the paper's full evaluation (Figs. 12-17, Tables 1-2).

Thin wrapper over the campaign CLI: equivalent to

    python -m repro figure table2 table1 fig5 fig12 ... fig17 \\
        --scenario <reduced|tiny> [--combinations N] [--workers N]

(the historical figure list of this driver — Fig. 11 has its own
benches), so the evaluation runs as a resumable campaign whose
measurement sets resolve through the content-addressed dataset cache —
re-running after an interruption (or a second time) skips everything
already computed.

Usage::

    python examples/full_evaluation.py [--combinations N] [--tiny]
        [--workers N] [--cache-dir DIR] [--fresh]

``--combinations`` limits the Table 2 rows (default 3 keeps the run in
minutes; pass 15 for the full cross-validation).
"""

import argparse
import sys
import time

from repro.campaign.cli import main as repro_main


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--combinations", type=int, default=3)
    parser.add_argument(
        "--tiny", action="store_true", help="use the tiny preset (smoke run)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for dataset generation",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="dataset cache root (default: $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="re-run every campaign step instead of replaying stored "
        "figure outputs (use after changing estimator/figure code)",
    )
    args = parser.parse_args()

    # The figures this driver has always printed, in its historical
    # order (fig11's variant training runs in its own benches).
    figures = [
        "table2",
        "table1",
        "fig5",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
    ]
    argv = [
        "figure",
        *figures,
        "--scenario",
        "tiny" if args.tiny else "reduced",
        "--combinations",
        str(args.combinations),
        "--verbose",
    ]
    if args.workers is not None:
        argv += ["--workers", str(args.workers)]
    if args.cache_dir is not None:
        argv += ["--cache-dir", args.cache_dir]
    if args.fresh:
        argv += ["--fresh"]

    start = time.time()
    code = repro_main(argv)
    print(f"total wall clock: {time.time() - start:.0f}s")
    return code


if __name__ == "__main__":
    sys.exit(main())
