#!/usr/bin/env python3
"""Aging study (paper Sec. 6.5, Figs. 16-17).

How fast does channel knowledge rot?  A preamble-based estimate is a
snapshot of the past; VVD's estimate comes from the *current* camera
frame.  This script ages both and prints MSE/PER versus estimate age —
the paper's clearest demonstration of why side-channel vision helps
sporadic transmitters.

Usage::

    python examples/aging_study.py [--ages 0 0.1 0.5 1.0]
"""

import argparse

from repro.campaign import DatasetCache, ModelCheckpointRegistry
from repro.config import SimulationConfig
from repro.experiments.bundle import build_evaluation_bundle
from repro.experiments.figures import fig16, fig17


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ages",
        type=float,
        nargs="+",
        default=[0.0, 0.1, 0.5, 1.0],
        help="estimate ages in seconds (multiples of 0.1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="dataset cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-vvd/datasets)",
    )
    parser.add_argument(
        "--model-dir",
        default=None,
        help="model checkpoint registry root (default: $REPRO_MODEL_DIR "
        "or ~/.cache/repro-vvd/models)",
    )
    args = parser.parse_args()

    config = SimulationConfig.tiny()
    print("Building evaluation bundle (tiny preset, cached artifacts)...")
    bundle = build_evaluation_bundle(
        config,
        num_combinations=1,
        cache=DatasetCache(args.cache_dir),
        checkpoints=ModelCheckpointRegistry(args.model_dir),
    )

    ages = tuple(args.ages)
    result = fig16.generate(bundle, ages_s=ages)
    print()
    print(fig16.render(result))
    print()
    print(fig17.render(result))
    print(
        "\nExpected shape: the genie's error grows with age while VVD's "
        "stays flat — its input is the current image, not a past packet."
    )


if __name__ == "__main__":
    main()
