"""Training throughput: im2col conv engine vs the reference loop.

Times one training epoch (mini-batch updates + validation evaluation) of
the reduced-config VVD CNN with both Conv2D implementations and asserts
the vectorized engine clears its speedup floors.  Two numbers are
tracked:

- **epoch speedup** — whole-epoch wall clock, reference vs im2col.  The
  seed's "reference" loop already lowered every kernel position to a
  GEMM, so the whole-epoch headroom on a single CPU core is bounded by
  BLAS throughput; the measured gain is ~1.8-1.9x (floor 1.5x,
  ``REPRO_TRAIN_FLOOR``).
- **first-conv train-step speedup** — forward + parameter-gradient
  backward of the first convolution (the 50x90 depth-image layer, the
  layer the im2col rewrite targets: its single-channel input makes the
  reference path's GEMMs rank-1).  Measured ~3.5-4x (floor 3x,
  ``REPRO_TRAIN_CONV_FLOOR``).

Shared CI runners time noisily; both floors are overridable via the
environment and CI sets lower bars, as with
``benchmarks/test_dataset_throughput.py``.
"""

import os
import time

import numpy as np

from repro.config import SimulationConfig
from repro.core.model import build_vvd_cnn
from repro.nn import Conv2D, MeanSquaredError, Nadam
from tools.bench_trajectory import append_entry

_EPOCH_FLOOR = float(os.environ.get("REPRO_TRAIN_FLOOR", 1.5))
_CONV_FLOOR = float(os.environ.get("REPRO_TRAIN_CONV_FLOOR", 3.0))
_REPEATS = 4
_BATCH = 64
_NUM_TRAIN = 256
_NUM_VAL = 64


def _model(config: SimulationConfig, impl: str):
    model = build_vvd_cnn((50, 90), 11, config.vvd, seed=0)
    for layer in model.layers:
        if isinstance(layer, Conv2D):
            layer.conv_impl = impl
    return model


def _epoch_time(config, impl, x, y, x_val, y_val) -> float:
    model = _model(config, impl)
    optimizer = Nadam(config.vvd.learning_rate)
    loss = MeanSquaredError()
    model.train_batch(x[:_BATCH], y[:_BATCH], optimizer, loss)  # warm-up
    best = float("inf")
    for _ in range(_REPEATS):
        start = time.perf_counter()
        for lo in range(0, _NUM_TRAIN, _BATCH):
            model.train_batch(
                x[lo : lo + _BATCH], y[lo : lo + _BATCH], optimizer, loss
            )
        model.evaluate(x_val, y_val)
        best = min(best, time.perf_counter() - start)
    return best


def _first_conv_step_time(config, impl, x) -> float:
    rng = np.random.default_rng(1)
    layer = Conv2D(
        config.vvd.conv_filters[0],
        config.vvd.kernel_size,
        conv_impl=impl,
    )
    layer.build((50, 90, 1), rng, np.float32)
    out = layer.forward(x[:_BATCH], training=True)
    grad = np.ones_like(out)
    layer.backward_params_only(grad)  # warm-up
    best = float("inf")
    for _ in range(_REPEATS + 2):
        start = time.perf_counter()
        layer.forward(x[:_BATCH], training=True)
        layer.backward_params_only(grad)
        best = min(best, time.perf_counter() - start)
    return best


def test_training_throughput():
    config = SimulationConfig.reduced()
    rng = np.random.default_rng(7)
    x = rng.normal(size=(_NUM_TRAIN, 50, 90, 1)).astype(np.float32)
    y = rng.normal(size=(_NUM_TRAIN, 22)).astype(np.float32)
    x_val = rng.normal(size=(_NUM_VAL, 50, 90, 1)).astype(np.float32)
    y_val = rng.normal(size=(_NUM_VAL, 22)).astype(np.float32)

    reference = _epoch_time(config, "reference", x, y, x_val, y_val)
    im2col = _epoch_time(config, "im2col", x, y, x_val, y_val)
    conv_reference = _first_conv_step_time(config, "reference", x)
    conv_im2col = _first_conv_step_time(config, "im2col", x)

    epoch_speedup = reference / im2col
    conv_speedup = conv_reference / conv_im2col
    print("\ntraining throughput (reduced config, batch 64):")
    print(f"{'engine':<12} {'epoch [s]':>10} {'images/s':>10}")
    for name, seconds in (("reference", reference), ("im2col", im2col)):
        print(
            f"{name:<12} {seconds:>10.3f} "
            f"{(_NUM_TRAIN + _NUM_VAL) / seconds:>10.0f}"
        )
    print(
        f"epoch speedup: {epoch_speedup:.2f}x (floor {_EPOCH_FLOOR}), "
        f"first-conv step speedup: {conv_speedup:.2f}x "
        f"(floor {_CONV_FLOOR})"
    )
    append_entry(
        "training_throughput",
        {
            "epoch_reference_s": reference,
            "epoch_im2col_s": im2col,
            "epoch_speedup": epoch_speedup,
            "conv_step_speedup": conv_speedup,
            "epoch_floor": _EPOCH_FLOOR,
            "conv_floor": _CONV_FLOOR,
            "timestamp": time.time(),
        },
    )

    assert epoch_speedup >= _EPOCH_FLOOR, (
        f"im2col epoch speedup {epoch_speedup:.2f}x below the "
        f"{_EPOCH_FLOOR}x floor"
    )
    assert conv_speedup >= _CONV_FLOOR, (
        f"first-conv step speedup {conv_speedup:.2f}x below the "
        f"{_CONV_FLOOR}x floor"
    )
