"""Benchmark: regenerate Fig. 17 (aging effect on PER).

Shape checks: aging hurts the genie's PER much more than VVD's — the
paper reports a near-binary jump for the genie and a negligible effect
for VVD (Sec. 6.5).
"""

from repro.experiments.figures import fig17


def test_fig17(benchmark, evaluation_bundle):
    result = benchmark(fig17.generate, evaluation_bundle)
    genie_delta = result.genie_per[-1] - result.genie_per[0]
    vvd_delta = abs(result.vvd_per[-1] - result.vvd_per[0])
    assert genie_delta >= 0
    assert genie_delta + 1e-9 >= vvd_delta
    print("\n" + fig17.render(result))
