"""Benchmark: SNR sensitivity ablation (Sec. 6.6 power discussion).

Shape check: lowering SNR degrades every technique, and standard
decoding (no equalization) degrades at least as much as Ground Truth.
"""

from repro.experiments.snr_sweep import run_snr_sweep


def test_snr_sweep(benchmark, bench_config):
    num_sets = 3 if bench_config.dataset.num_sets > 3 else None
    result = benchmark.pedantic(
        run_snr_sweep,
        args=(bench_config, (6.0, 9.5)),
        kwargs={"num_sets": num_sets},
        rounds=1,
        iterations=1,
    )
    gt = result.per["Ground Truth"]
    std = result.per["Standard Decoding"]
    assert gt[0] >= gt[-1] - 1e-9       # less SNR, more errors
    assert std[0] >= gt[0] - 1e-9       # no equalization is never better
    rows = "\n".join(
        f"  {name:<26} " + " ".join(f"{v:.3f}" for v in series)
        for name, series in result.per.items()
    )
    print(
        f"\nSNR sweep (PER at {result.snrs_db} dB):\n{rows}"
    )
