"""Shared state for the benchmark harness.

Building the evaluation bundle (dataset simulation + VVD training + the
ten-technique decode over Table 2 combinations) dominates the cost of the
figure benchmarks, so it is built once per session and shared; each bench
then times its figure's aggregation step and prints the regenerated
table so the output can be compared against the paper (EXPERIMENTS.md).

Environment knobs:

``REPRO_BENCH_COMBINATIONS``
    Number of Table 2 combinations evaluated (default 2; 15 = full).
``REPRO_BENCH_PRESET``
    ``reduced`` (default), ``tiny`` (CI smoke) or ``paper``.
``REPRO_BENCH_VVD_EPOCHS`` / ``REPRO_BENCH_VVD_SUBSAMPLE``
    Override the CNN training cost (defaults 12 / 2 keep the whole
    harness in ~10 minutes; unset them for the preset's full training).
``REPRO_BENCH_WORKERS``
    Process-pool size for dataset generation (default serial).
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.config import SimulationConfig
from repro.experiments.bundle import build_evaluation_bundle


def _preset() -> SimulationConfig:
    name = os.environ.get("REPRO_BENCH_PRESET", "reduced")
    if name == "tiny":
        config = SimulationConfig.tiny()
    elif name == "paper":
        config = SimulationConfig.paper_scale()
    else:
        config = SimulationConfig.reduced()
    epochs = int(
        os.environ.get("REPRO_BENCH_VVD_EPOCHS", min(12, config.vvd.epochs))
    )
    subsample = int(
        os.environ.get(
            "REPRO_BENCH_VVD_SUBSAMPLE", max(2, config.vvd.train_subsample)
        )
    )
    return config.replace(
        vvd=dataclasses.replace(
            config.vvd, epochs=epochs, train_subsample=subsample
        )
    )


def _num_combinations(config: SimulationConfig) -> int:
    default = min(3, config.dataset.num_sets)
    value = int(os.environ.get("REPRO_BENCH_COMBINATIONS", default))
    return max(1, min(value, config.dataset.num_sets))


@pytest.fixture(scope="session")
def bench_config() -> SimulationConfig:
    return _preset()


@pytest.fixture(scope="session")
def evaluation_bundle(bench_config):
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", 0)) or None
    return build_evaluation_bundle(
        bench_config,
        num_combinations=_num_combinations(bench_config),
        verbose=False,
        workers=workers,
    )
