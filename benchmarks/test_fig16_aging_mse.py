"""Benchmark: regenerate Fig. 16 (aging effect on estimation MSE).

Shape checks: the genie estimate degrades sharply with age and saturates
(Sec. 6.5); VVD starts higher but ages mildly, so the curves cross.
"""

from repro.experiments.figures import fig16


def test_fig16(benchmark, evaluation_bundle):
    result = benchmark(fig16.generate, evaluation_bundle)
    assert result.genie_mse[0] < result.genie_mse[-1]
    genie_growth = result.genie_mse[-1] / result.genie_mse[0]
    vvd_growth = result.vvd_mse[-1] / max(result.vvd_mse[0], 1e-12)
    assert genie_growth > vvd_growth  # VVD ages more gracefully
    print("\n" + fig16.render(result))
