"""Benchmark: regenerate Table 2 (set combinations)."""

from repro.experiments.figures import table2


def test_table2(benchmark, evaluation_bundle):
    combos = benchmark(table2.generate)
    assert len(combos) == 15
    assert combos[0].validation == 6 and combos[0].test == 8
    print("\n" + table2.render(evaluation_bundle.sets))
