"""Benchmark: regenerate Fig. 15 (decode success/failure vs time).

Shape check: packet errors are bursty — errors co-occur with LoS
blockage more often than with a clear LoS.
"""

import numpy as np

from repro.experiments.figures import fig15


def test_fig15(benchmark, evaluation_bundle):
    data = benchmark(fig15.generate, evaluation_bundle)
    assert len(data.successes) > 0
    failures = np.array([not s for s in data.successes])
    blocked = np.array(data.blocked)
    if failures.any() and blocked.any() and (~blocked).any():
        fail_rate_blocked = failures[blocked].mean()
        fail_rate_clear = failures[~blocked].mean()
        assert fail_rate_blocked >= fail_rate_clear
    print("\n" + fig15.render(data))
