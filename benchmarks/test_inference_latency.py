"""Benchmark: VVD inference latency (paper Sec. 4).

The paper reports ~0.9 ms/estimate on a GTX 850 GPU and ~9.8 ms on a
laptop CPU.  This bench times one depth-image -> CIR prediction through
the pure-numpy CNN; expect the same order of magnitude as the paper's
CPU figure.
"""

import numpy as np

from repro.config import VVDConfig
from repro.core.model import build_vvd_cnn


def test_inference_latency(benchmark):
    model = build_vvd_cnn(
        (50, 90), 11, VVDConfig(conv_filters=(32, 32, 64), dense_units=256)
    )
    image = np.random.default_rng(0).normal(size=(1, 50, 90, 1)).astype(
        np.float32
    )
    model.predict(image)  # warm-up
    out = benchmark(model.predict, image)
    assert out.shape == (1, 22)
