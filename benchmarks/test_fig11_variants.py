"""Benchmark: regenerate Fig. 11 (VVD and Kalman variant PER).

Shape checks: fresher images estimate better (VVD-Current <= VVD-100ms
Future on average); Kalman variants perform similarly (the channel is
nearly memoryless, Sec. 6.1).

This bench trains three separate VVD variants, so it runs on a single
combination by default.
"""

from repro.experiments.figures import fig11


def test_fig11(benchmark, evaluation_bundle):
    result = benchmark(
        fig11.generate,
        evaluation_bundle.runner,
        evaluation_bundle.combinations[:1],
        evaluation_bundle.config,
    )
    vvd_means = {n: s.mean for n, s in result.vvd.items()}
    kalman_means = [s.mean for s in result.kalman.values()]
    assert (
        vvd_means["VVD-Current"]
        <= vvd_means["VVD-100ms Future"] + 0.05
    )
    spread = max(kalman_means) - min(kalman_means)
    assert spread < 0.1  # AR(1) ~ AR(5) ~ AR(20)
    print("\n" + fig11.render(result))
