"""Benchmark: regenerate Table 1 (technique capability comparison)."""

from repro.experiments.figures import table1


def test_table1(benchmark, evaluation_bundle):
    rows = benchmark(table1.generate)
    assert [r["technique"] for r in rows] == [
        "Blind",
        "Pilot",
        "Time-Series",
        "VVD",
    ]
    vvd = rows[3]
    assert vvd["reliable"] and vvd["scalable"] and vvd["dynamic"]
    print("\n" + table1.render(evaluation_bundle))
