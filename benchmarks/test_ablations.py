"""Benchmark: the paper's Sec. 4 design-choice ablations.

1. Average vs max pooling (paper: average slightly better).
2. With vs without batch normalization (paper: no benefit, slower).
3. ZF vs MMSE equalization (paper leaves MMSE as future work).

These are timing benches over one training epoch / equalizer design;
quality comparisons live in EXPERIMENTS.md.
"""

import numpy as np

from repro.config import VVDConfig
from repro.core.model import build_vvd_cnn
from repro.dsp import mmse_equalizer, zero_forcing_equalizer
from repro.nn import MeanSquaredError, Nadam


def _one_epoch(model, x, y):
    optimizer = Nadam(1e-4)
    loss = MeanSquaredError()
    for start in range(0, len(x), 32):
        model.train_batch(x[start : start + 32], y[start : start + 32],
                          optimizer, loss)
    return model


def _data(seed=0, n=64):
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(n, 50, 90, 1)).astype(np.float32)
    y = gen.normal(size=(n, 22)).astype(np.float32)
    return x, y


def test_ablation_average_pooling_epoch(benchmark):
    x, y = _data()
    model = build_vvd_cnn((50, 90), 11, VVDConfig(pooling="average"))
    benchmark(_one_epoch, model, x, y)


def test_ablation_max_pooling_epoch(benchmark):
    x, y = _data()
    model = build_vvd_cnn((50, 90), 11, VVDConfig(pooling="max"))
    benchmark(_one_epoch, model, x, y)


def test_ablation_batch_norm_epoch(benchmark):
    x, y = _data()
    model = build_vvd_cnn((50, 90), 11, VVDConfig(use_batch_norm=True))
    benchmark(_one_epoch, model, x, y)


def test_ablation_zf_design(benchmark):
    h = np.array([1.0, 0.6 + 0.25j, 0.4 - 0.22j, 0.25 + 0.12j])
    taps = benchmark(zero_forcing_equalizer, h, 31)
    assert taps.shape == (31,)


def test_ablation_mmse_design(benchmark):
    h = np.array([1.0, 0.6 + 0.25j, 0.4 - 0.22j, 0.25 + 0.12j])
    taps = benchmark(mmse_equalizer, h, 31, 0.1)
    assert taps.shape == (31,)
