"""Benchmark: regenerate Fig. 14 (channel-estimation MSE).

Shape checks: the genie preamble estimate is the most accurate practical
estimate; 500 ms-old estimates are the stalest blind technique.
"""

from repro.experiments.figures import fig14


def test_fig14(benchmark, evaluation_bundle):
    rows = benchmark(fig14.generate, evaluation_bundle)
    mean = {name: stats.mean for name, stats in rows.items()}
    assert mean["100ms Previous"] < mean["500ms Previous"]
    kalman = next(v for k, v in mean.items() if k.startswith("Kalman"))
    assert kalman <= mean["100ms Previous"] * 1.5
    print("\n" + fig14.render(evaluation_bundle))
