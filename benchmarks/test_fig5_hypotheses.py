"""Benchmark: regenerate Fig. 5 (hypothesis-testing tap comparison).

Shape check: H2 (same displacement, later time) must be much closer to
the control estimate than H1 (different displacement) — the paper's
Sec. 2.2 hypotheses.
"""

from repro.experiments.figures import fig5


def test_fig5(benchmark, evaluation_bundle):
    sets = evaluation_bundle.sets
    result = benchmark(fig5.generate, sets[1], sets[2:])
    assert result.mse_h2 < result.mse_h1
    assert result.hypotheses_hold
    print("\n" + fig5.render(result))
