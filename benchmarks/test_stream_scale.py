"""Heterogeneous stream scale: 1,000-link capacity run, O(links) memory.

The PR 8 acceptance bench: a 1,000-link heterogeneous (``mixed``
traffic, ``triple`` QoS) capacity simulation must

- complete at a sane arrival-processing rate
  (``REPRO_STREAM_SCALE_FLOOR`` arrivals/s, default 20k — shared CI
  runners set a lower bar),
- be byte-identical across repeat runs (pure function of the seed),
- hold peak memory *independent of the event count*: the lazy heap
  scheduler keeps one pending event per link, so memory grows with
  links (cursors) but never with ``links x duration x rate`` (the
  dense pre-sorted event list the seed replay materialized).

Measured numbers land in the merged benchmark trajectory
(``tools/bench_trajectory.py``) under the ``stream_scale`` bench.
"""

import json
import os
import time
import tracemalloc

from repro.stream.capacity import simulate_capacity
from tools.bench_trajectory import append_entry

_LINKS = 1000
_DURATION_S = 10.0
_ARRIVALS_PER_S_FLOOR = float(
    os.environ.get("REPRO_STREAM_SCALE_FLOOR", 20_000.0)
)


def _peak_memory_bytes(links: int, duration_s: float) -> int:
    tracemalloc.start()
    simulate_capacity(links, duration_s=duration_s)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_stream_scale():
    # Warm-up run outside the timed region (imports, allocator pools).
    simulate_capacity(64, duration_s=2.0)

    start = time.perf_counter()
    result = simulate_capacity(_LINKS, duration_s=_DURATION_S)
    elapsed = time.perf_counter() - start
    arrivals_per_s = result.arrivals / elapsed

    # Determinism: the same parameters replay to the same bytes.
    repeat = simulate_capacity(_LINKS, duration_s=_DURATION_S)
    assert json.dumps(result.payload(), sort_keys=True) == json.dumps(
        repeat.payload(), sort_keys=True
    )

    # Memory independence of the event count: doubling the horizon
    # doubles the events but must NOT double peak memory (the dense
    # replay list would).  Generous 1.5x bound — the heap holds one
    # pending event per link either way.
    peak_short = _peak_memory_bytes(400, 5.0)
    peak_long = _peak_memory_bytes(400, 20.0)
    assert peak_long < 1.5 * peak_short, (
        f"peak memory grew with the event count: {peak_short} B at "
        f"5 s vs {peak_long} B at 20 s"
    )

    print(
        f"\nstream scale ({_LINKS} links, {_DURATION_S:g} s): "
        f"{result.arrivals} arrivals in {elapsed:.2f} s "
        f"({arrivals_per_s:.0f} arrivals/s), "
        f"{result.batches} batches, slo_met={result.slo_met}; "
        f"peak {peak_short / 1e6:.2f} MB @5s vs "
        f"{peak_long / 1e6:.2f} MB @20s (400 links)"
    )

    append_entry(
        "stream_scale",
        {
            "links": _LINKS,
            "duration_s": _DURATION_S,
            "arrivals": result.arrivals,
            "batches": result.batches,
            "elapsed_s": elapsed,
            "arrivals_per_s": arrivals_per_s,
            "floor_arrivals_per_s": _ARRIVALS_PER_S_FLOOR,
            "peak_bytes_5s_400links": peak_short,
            "peak_bytes_20s_400links": peak_long,
            "slo_met": result.slo_met,
            "timestamp": time.time(),
        },
    )
    assert arrivals_per_s > _ARRIVALS_PER_S_FLOOR, (
        f"{arrivals_per_s:.0f} arrivals/s under the "
        f"{_ARRIVALS_PER_S_FLOOR:.0f} floor (override with "
        "REPRO_STREAM_SCALE_FLOOR)"
    )
