"""Dataset-generation throughput: batched PHY engine vs scalar loop.

Times ``generate_measurement_set`` on the default (reduced) campaign
configuration with both processing engines, verifies the outputs match
to 1e-10, and asserts the batched engine clears the 5x acceptance bar.
Packets/second numbers are printed for the tracking table.

``REPRO_THROUGHPUT_FLOOR`` overrides the asserted speedup floor —
shared CI runners set a lower bar since wall-clock ratios there are
noisy; the 5x acceptance number is measured on a quiet machine.
"""

import os
import time

import numpy as np

from repro.config import SimulationConfig
from repro.dataset import build_components, generate_measurement_set
from tools.bench_trajectory import append_entry

_REPEATS = 3
_SPEEDUP_FLOOR = float(os.environ.get("REPRO_THROUGHPUT_FLOOR", 5.0))
_TOL = 1e-10


def _timed(components, engine: str) -> tuple[float, object]:
    start = time.perf_counter()
    result = generate_measurement_set(components, 0, engine=engine)
    return time.perf_counter() - start, result


def test_dataset_throughput():
    config = SimulationConfig.reduced()
    num_packets = config.dataset.packets_per_set

    scalar_components = build_components(config)
    batch_components = build_components(config)
    # One warm-up set amortizes the engine's template factorization the
    # way a real campaign (15+ sets per run) does.
    generate_measurement_set(batch_components, 1, engine="batch")

    # Interleave the engines and keep per-engine minima so machine-load
    # drift hits both sides equally.
    scalar_time = batch_time = np.inf
    scalar_set = batch_set = None
    for _ in range(_REPEATS):
        elapsed, scalar_set = _timed(scalar_components, "scalar")
        scalar_time = min(scalar_time, elapsed)
        elapsed, batch_set = _timed(batch_components, "batch")
        batch_time = min(batch_time, elapsed)

    speedup = scalar_time / batch_time
    print(
        f"\ndataset throughput ({num_packets} packets/set): "
        f"scalar {scalar_time:.3f}s ({num_packets / scalar_time:.1f} pkt/s), "
        f"batched {batch_time:.3f}s ({num_packets / batch_time:.1f} pkt/s), "
        f"speedup {speedup:.2f}x"
    )
    append_entry(
        "dataset_throughput",
        {
            "packets_per_set": num_packets,
            "scalar_s": scalar_time,
            "batched_s": batch_time,
            "speedup": speedup,
            "floor": _SPEEDUP_FLOOR,
            "timestamp": time.time(),
        },
    )

    # The batched engine must be a pure accelerator: same campaign.
    for a, b in zip(scalar_set.packets, batch_set.packets):
        assert a.noise_seed == b.noise_seed
        assert a.preamble_detected == b.preamble_detected
        assert np.allclose(a.h_ls, b.h_ls, atol=_TOL)
        assert np.allclose(a.h_preamble, b.h_preamble, atol=_TOL)
    assert np.array_equal(scalar_set.frames, batch_set.frames)

    assert speedup >= _SPEEDUP_FLOOR, (
        f"batched engine only {speedup:.2f}x faster than the scalar loop "
        f"(needs >= {_SPEEDUP_FLOOR}x)"
    )
