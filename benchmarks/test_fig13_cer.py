"""Benchmark: regenerate Fig. 13 (CER of all techniques).

Shape checks: CER ordering is consistent with PER but compressed; the
paper's reliability threshold (~2-3e-2) separates the reliable cluster
(Ground Truth / Genie / combined) from standard decoding.
"""

from repro.experiments.figures import fig13


def test_fig13(benchmark, evaluation_bundle):
    rows = benchmark(fig13.generate, evaluation_bundle)
    mean = {name: stats.mean for name, stats in rows.items()}
    assert mean["Ground Truth"] < mean["Standard Decoding"]
    assert mean["Preamble Based-Genie"] < mean["Standard Decoding"]
    assert mean["Preamble-VVD Combined"] <= mean["Preamble Based"]
    print("\n" + fig13.render(evaluation_bundle))
