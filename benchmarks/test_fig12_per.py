"""Benchmark: regenerate Fig. 12 (PER of all techniques).

Shape checks (paper Sec. 6.1): Ground Truth is the best technique; the
combined techniques beat the preamble-based technique by a large factor;
blind techniques sit between the combined and stale-estimate extremes.
"""

from repro.experiments.figures import fig12


def test_fig12(benchmark, evaluation_bundle):
    rows = benchmark(fig12.generate, evaluation_bundle)
    mean = {name: stats.mean for name, stats in rows.items()}
    assert mean["Ground Truth"] <= min(mean.values()) + 1e-9
    assert mean["Preamble-VVD Combined"] < mean["Preamble Based"]
    assert mean["Preamble-Kalman Combined"] < mean["Preamble Based"]
    assert mean["Ground Truth"] <= mean["VVD-Current"]
    assert mean["Preamble Based-Genie"] <= mean["Preamble Based"]
    print("\n" + fig12.render(evaluation_bundle))
