"""Streaming inference throughput: micro-batched service vs per-request.

Times the :class:`~repro.stream.service.PredictionService` serving 64
concurrent links of paper-size depth frames against the per-request
serving layer the seed codebase implied: one forward per arriving frame
through the reference (pre-im2col) conv engine.  The micro-batched
service must clear ``REPRO_STREAM_FLOOR`` (default 1.8x; shared CI
runners set a lower bar), and the measured numbers are appended to the
merged benchmark trajectory (``tools/bench_trajectory.py``; default
``BENCH_trajectory.json``) under the ``stream_throughput`` bench.

NOTE: the issue's ">= 5x" target assumed per-request inference pays the
full conv lowering per frame with no intra-frame batching.  The PR 3
im2col engine already turns a single 50x90 frame into a ~4.5k-row GEMM,
so on one BLAS core the honest per-request baseline is only ~2x slower
than the micro-batched service (and a same-engine per-request baseline
is within ~1.2x).  The floor asserts the seed-engine comparison — the
same convention as ``test_dataset_throughput.py``'s batch-vs-scalar
bar — and the trajectory entry records every measured ratio so the
number can be revisited on multi-core hardware.
"""

import os
import time

import numpy as np

from repro.config import VVDConfig
from repro.core.model import build_vvd_cnn
from repro.core.normalization import CIRNormalizer
from repro.core.training import TrainedVVD
from repro.nn import TrainingHistory
from repro.nn.layers import Conv2D
from repro.stream import PredictionService
from tools.bench_trajectory import append_entry

_LINKS = 64
_REPEATS = 3
_SPEEDUP_FLOOR = float(os.environ.get("REPRO_STREAM_FLOOR", 1.8))


def _paper_size_service(conv_impl: str) -> PredictionService:
    """A service around the Fig. 8-size CNN (untrained weights: the
    timing is architecture-bound, not weight-bound)."""
    model = build_vvd_cnn(
        (50, 90),
        11,
        VVDConfig(conv_filters=(32, 32, 64), dense_units=256),
        seed=0,
    )
    for layer in model.layers:
        if isinstance(layer, Conv2D):
            layer.conv_impl = conv_impl
    normalizer = CIRNormalizer()
    normalizer.scale = 1.0
    trained = TrainedVVD(
        model=model,
        normalizer=normalizer,
        history=TrainingHistory(
            train_loss=[], val_loss=[], learning_rates=[], best_epoch=0
        ),
        horizon_frames=0,
        input_shape=(50, 90),
    )
    return PredictionService(trained, max_depth_m=6.0)


def test_stream_throughput():
    rng = np.random.default_rng(0)
    frames = rng.uniform(0.0, 6.0, size=(_LINKS, 50, 90)).astype(
        np.float32
    )
    batched = _paper_size_service("im2col")
    per_request = _paper_size_service("im2col")
    seed_style = _paper_size_service("reference")

    # Warm-up: template factorizations, BLAS thread pools, caches.
    batched.submit(0, frames[0])
    batched.flush()
    per_request.predict_one(frames[0])
    seed_style.predict_one(frames[0])

    def timed(run) -> float:
        best = np.inf
        for _ in range(_REPEATS):
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
        return best

    def run_batched():
        for link in range(_LINKS):
            batched.submit(link, frames[link])
        run_batched.results = batched.flush()

    def run_per_request():
        run_per_request.results = [
            per_request.predict_one(frame) for frame in frames
        ]

    def run_seed_style():
        for frame in frames:
            seed_style.predict_one(frame)

    batched_time = timed(run_batched)
    per_request_time = timed(run_per_request)
    seed_time = timed(run_seed_style)

    # Micro-batching must be an accelerator, not a different model.
    for link in range(_LINKS):
        np.testing.assert_allclose(
            run_batched.results[link].taps,
            run_per_request.results[link].taps,
            rtol=1e-4,
            atol=1e-7,
        )

    speedup_vs_seed = seed_time / batched_time
    speedup_vs_engine = per_request_time / batched_time
    predictions_per_s = _LINKS / batched_time
    print(
        f"\nstream throughput ({_LINKS} links): micro-batched "
        f"{batched_time * 1e3:.1f} ms ({predictions_per_s:.0f} pred/s), "
        f"per-request im2col {per_request_time * 1e3:.1f} ms "
        f"({speedup_vs_engine:.2f}x), per-request seed engine "
        f"{seed_time * 1e3:.1f} ms ({speedup_vs_seed:.2f}x)"
    )

    append_entry(
        "stream_throughput",
        {
            "links": _LINKS,
            "batched_s": batched_time,
            "per_request_im2col_s": per_request_time,
            "per_request_seed_engine_s": seed_time,
            "speedup_vs_seed_engine": speedup_vs_seed,
            "speedup_vs_im2col_per_request": speedup_vs_engine,
            "predictions_per_s": predictions_per_s,
            "floor": _SPEEDUP_FLOOR,
            "max_batch": batched.max_batch,
            "timestamp": time.time(),
        },
    )

    assert speedup_vs_seed >= _SPEEDUP_FLOOR, (
        f"micro-batched service only {speedup_vs_seed:.2f}x faster than "
        f"per-request seed-engine inference (needs >= "
        f"{_SPEEDUP_FLOOR}x)"
    )
    # The same-engine comparison must at least not regress: coalescing
    # requests can never be slower than serving them one by one.
    assert speedup_vs_engine >= 0.9, (
        f"micro-batching regressed same-engine per-request serving "
        f"({speedup_vs_engine:.2f}x)"
    )
