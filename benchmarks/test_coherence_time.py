"""Benchmark: Sec. 6.6 coherence-time analysis.

The paper argues VVD is real-time capable because inference latency
(~10 ms CPU) is below the indoor coherence time (~50 ms at human
speeds).  This bench measures the simulated channel's coherence time and
checks the argument holds.
"""

from repro.experiments.coherence import (
    estimate_coherence_time,
    realtime_capable,
)


def test_coherence_time(benchmark, evaluation_bundle):
    config = evaluation_bundle.config
    result = benchmark(
        estimate_coherence_time,
        evaluation_bundle.sets[0],
        config.dataset.packet_interval_s,
        10,
    )
    assert result.coherence_time_s > 0
    # Paper Sec. 6.6: sub-10 ms inference beats the coherence time.
    assert realtime_capable(result, 0.0098)
    print(
        f"\ncoherence time (rho<{result.threshold}): "
        f"{result.coherence_time_s * 1000:.0f} ms; "
        "correlation vs lag: "
        + " ".join(f"{c:.2f}" for c in result.correlation)
    )
