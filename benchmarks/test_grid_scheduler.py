"""Parallel grid scheduling throughput: ``--jobs 4`` vs ``--jobs 1``.

Runs a 24-member parametric grid (the acceptance scale) cold under the
serial executor and cold under the 4-worker wavefront, asserts the
aggregate results are byte-identical, that the parallel speedup clears
``REPRO_GRID_FLOOR``, and that a repeat parallel run is a pure manifest
replay reporting the ``100% cache hits`` sentinel.  The measured
numbers are appended to the merged benchmark trajectory
(``tools/bench_trajectory.py``) under the ``grid_scheduler`` bench.

The default floor is machine-aware: process-level parallelism cannot
beat the serial path on a single hardware core (this container), so
below 4 cores the default only asserts the wavefront is not
pathologically slower (0.3x — scheduling overhead plus worker
start-up on a seconds-scale grid), while 4+ core machines must show a
real speedup (1.3x; quiet 4-core machines measure ~2.5-3x).
``REPRO_GRID_FLOOR`` overrides either default.
"""

from __future__ import annotations

import io
import os
import time
from contextlib import redirect_stdout
from pathlib import Path

from repro.campaign import GridSpec, register_grid
from repro.campaign.cli import main
from tools.bench_trajectory import append_entry

_JOBS = int(os.environ.get("REPRO_GRID_JOBS", 4))


def _default_floor() -> float:
    cores = os.cpu_count() or 1
    return 1.3 if cores >= 4 else 0.3


_SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_GRID_FLOOR", _default_floor())
)


def _bench_grid() -> GridSpec:
    """The 24-member acceptance grid (seconds-scale smoke members)."""
    return register_grid(
        GridSpec(
            name="bench-grid-24",
            description="grid-scheduler benchmark (24 members)",
            base="smoke",
            axes=(
                ("snr_db", (6.0, 9.5, 12.0)),
                ("seed", (0, 1, 2, 3)),
                ("speed", ((0.4, 0.8), (1.0, 1.6))),
            ),
            tags=("bench",),
        ),
        replace=True,
    )


def _run_grid(cache_dir: Path, jobs: int) -> tuple[float, str]:
    """One ``repro grid`` invocation; returns (seconds, stdout)."""
    stdout = io.StringIO()
    start = time.perf_counter()
    with redirect_stdout(stdout):
        code = main(
            [
                "grid",
                "--grid",
                "bench-grid-24",
                "--jobs",
                str(jobs),
                "--cache-dir",
                str(cache_dir),
            ]
        )
    elapsed = time.perf_counter() - start
    assert code == 0, stdout.getvalue()
    return elapsed, stdout.getvalue()


def _aggregate_bytes(cache_dir: Path) -> bytes:
    paths = list(cache_dir.glob("campaigns/*/results/results.json"))
    assert len(paths) == 1, paths
    return paths[0].read_bytes()


def test_grid_scheduler_throughput(tmp_path):
    spec = _bench_grid()
    assert spec.num_points == 24

    serial_dir = tmp_path / "serial-cache"
    parallel_dir = tmp_path / "parallel-cache"

    serial_s, serial_out = _run_grid(serial_dir, jobs=1)
    parallel_s, parallel_out = _run_grid(parallel_dir, jobs=_JOBS)
    assert "24 derived scenario(s)" in serial_out
    assert "24 derived scenario(s)" in parallel_out

    # Scheduling must never change results: cold serial and cold
    # parallel runs aggregate to byte-identical stores.
    assert _aggregate_bytes(serial_dir) == _aggregate_bytes(parallel_dir)

    # A repeat parallel run is a pure manifest replay.
    repeat_s, repeat_out = _run_grid(parallel_dir, jobs=_JOBS)
    assert "0 executed, 25 resumed" in repeat_out
    assert (
        "no measurement sets regenerated (100% cache hits)" in repeat_out
    )

    speedup = serial_s / parallel_s
    members_per_s = spec.num_points / parallel_s
    print(
        f"\ngrid scheduler (24 members): jobs=1 {serial_s:.2f}s, "
        f"jobs={_JOBS} {parallel_s:.2f}s ({members_per_s:.1f} "
        f"members/s), speedup {speedup:.2f}x (floor {_SPEEDUP_FLOOR}, "
        f"{os.cpu_count()} core(s)); repeat replay {repeat_s:.2f}s"
    )

    append_entry(
        "grid_scheduler",
        {
            "members": spec.num_points,
            "jobs": _JOBS,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "repeat_s": repeat_s,
            "speedup": speedup,
            "members_per_s": members_per_s,
            "floor": _SPEEDUP_FLOOR,
            "cores": os.cpu_count(),
            "timestamp": time.time(),
        },
    )

    assert speedup >= _SPEEDUP_FLOOR, (
        f"parallel grid only {speedup:.2f}x vs serial (needs >= "
        f"{_SPEEDUP_FLOOR}x on {os.cpu_count()} core(s))"
    )


def test_repeat_run_replays_without_store_mutation(tmp_path):
    """The aggregate's bytes survive a replay untouched."""
    _bench_grid()
    cache_dir = tmp_path / "cache"
    _run_grid(cache_dir, jobs=2)
    before = _aggregate_bytes(cache_dir)
    _, out = _run_grid(cache_dir, jobs=2)
    assert "100% cache hits" in out
    assert _aggregate_bytes(cache_dir) == before
